"""Huffman code construction.

The wavelet tree of the FM-index is *Huffman shaped* (Section 3.1): each
symbol's root-to-leaf path in the tree is its Huffman codeword, so frequent
symbols sit near the root and rank/access operations cost ``O(H0(T))`` on
average instead of ``O(log |Sigma|)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import BinaryIO, Mapping, Sequence

import numpy as np

from repro.core.errors import CorruptedFileError
from repro.storage.codec import ChunkReader, ChunkWriter, Serializable

__all__ = ["HuffmanCode"]


@dataclass(frozen=True)
class _Node:
    weight: int
    order: int
    symbol: int | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    def __lt__(self, other: "_Node") -> bool:
        # Tie-break on insertion order so the construction is deterministic.
        return (self.weight, self.order) < (other.weight, other.order)


class HuffmanCode(Serializable):
    """Canonical-by-construction Huffman code over integer symbols.

    Parameters
    ----------
    frequencies:
        Mapping from symbol (an ``int``) to its number of occurrences.  Symbols
        with zero frequency are ignored; at least one symbol must remain.
    """

    def __init__(self, frequencies: Mapping[int, int]):
        items = [(sym, freq) for sym, freq in sorted(frequencies.items()) if freq > 0]
        if not items:
            raise ValueError("Huffman code requires at least one symbol with positive frequency")
        self._codes: dict[int, tuple[int, ...]] = {}
        if len(items) == 1:
            # Degenerate alphabet: give the single symbol a 1-bit code.
            self._codes[items[0][0]] = (0,)
            self._root_symbols = [items[0][0]]
            return
        heap: list[_Node] = []
        for order, (sym, freq) in enumerate(items):
            heapq.heappush(heap, _Node(weight=freq, order=order, symbol=sym))
        next_order = len(items)
        while len(heap) > 1:
            a = heapq.heappop(heap)
            b = heapq.heappop(heap)
            heapq.heappush(heap, _Node(weight=a.weight + b.weight, order=next_order, left=a, right=b))
            next_order += 1
        root = heap[0]
        self._assign(root, ())
        self._root_symbols = [sym for sym, _ in items]

    def _assign(self, node: _Node, prefix: tuple[int, ...]) -> None:
        if node.symbol is not None:
            self._codes[node.symbol] = prefix if prefix else (0,)
            return
        assert node.left is not None and node.right is not None
        self._assign(node.left, prefix + (0,))
        self._assign(node.right, prefix + (1,))

    # -- persistence -------------------------------------------------------------

    def write(self, fp: BinaryIO) -> None:
        """Serialise the codebook (symbols, codeword lengths, packed code bits)."""
        symbols = sorted(self._codes)
        lengths = np.array([len(self._codes[s]) for s in symbols], dtype=np.int64)
        flat = np.array([bit for s in symbols for bit in self._codes[s]], dtype=np.uint8)
        writer = ChunkWriter(fp)
        writer.header("HuffmanCode")
        writer.array("SYMS", np.array(symbols, dtype=np.int64))
        writer.array("LENS", lengths)
        writer.int("NBIT", int(flat.size))
        writer.array("BITS", np.packbits(flat) if flat.size else np.zeros(0, dtype=np.uint8))

    @classmethod
    def read(cls, fp: BinaryIO) -> "HuffmanCode":
        """Read a codebook written by :meth:`write`."""
        reader = ChunkReader(fp)
        reader.header("HuffmanCode")
        symbols = reader.array("SYMS").astype(np.int64, copy=False)
        lengths = reader.array("LENS").astype(np.int64, copy=False)
        n_bits = reader.int("NBIT")
        packed = reader.array("BITS")
        if symbols.size != lengths.size or int(lengths.sum()) != n_bits or np.any(lengths < 1):
            raise CorruptedFileError("Huffman codebook arrays are inconsistent")
        flat = np.unpackbits(packed)[:n_bits] if n_bits else np.zeros(0, dtype=np.uint8)
        code = cls.__new__(cls)
        code._codes = {}
        offset = 0
        for symbol, length in zip(symbols, lengths):
            code._codes[int(symbol)] = tuple(int(b) for b in flat[offset : offset + int(length)])
            offset += int(length)
        code._root_symbols = [int(s) for s in symbols]
        return code

    # -- accessors --------------------------------------------------------------

    @property
    def symbols(self) -> list[int]:
        """Symbols covered by the code, in ascending order."""
        return sorted(self._codes)

    def code(self, symbol: int) -> tuple[int, ...]:
        """The codeword of ``symbol`` as a tuple of bits (MSB first)."""
        return self._codes[symbol]

    def code_length(self, symbol: int) -> int:
        """Length in bits of the codeword of ``symbol``."""
        return len(self._codes[symbol])

    def codebook(self) -> dict[int, tuple[int, ...]]:
        """A copy of the full symbol -> codeword mapping."""
        return dict(self._codes)

    def average_length(self, frequencies: Mapping[int, int]) -> float:
        """Weighted average codeword length under ``frequencies``."""
        total = sum(freq for sym, freq in frequencies.items() if sym in self._codes)
        if total == 0:
            return 0.0
        weighted = sum(len(self._codes[sym]) * freq for sym, freq in frequencies.items() if sym in self._codes)
        return weighted / total

    def encode(self, symbols: Sequence[int]) -> list[int]:
        """Encode a sequence of symbols into a flat list of bits."""
        out: list[int] = []
        for sym in symbols:
            out.extend(self._codes[sym])
        return out
