"""Huffman-shaped wavelet tree over integer sequences.

This is the structure used to represent the BWT string ``T^bwt`` in the
FM-index (Section 3.1 of the paper): it supports

* ``access(i)`` -- the symbol at position ``i``,
* ``rank(c, i)`` -- occurrences of ``c`` in ``[0, i)``,
* ``select(c, j)`` -- position of the ``j``-th occurrence of ``c``,

each in time proportional to the Huffman codeword length of the symbol
involved (``O(H0)`` on average), using one plain bitmap per internal node.
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import BinaryIO, Sequence

import numpy as np

from repro.bits.bitvector import BitVector
from repro.core.errors import CorruptedFileError
from repro.sequence.huffman import HuffmanCode
from repro.storage.codec import ChunkReader, ChunkWriter, Serializable

__all__ = ["WaveletTree"]


class _WTNode:
    __slots__ = ("bitmap", "left", "right", "symbol")

    def __init__(self) -> None:
        self.bitmap: BitVector | None = None
        self.left: "_WTNode | None" = None
        self.right: "_WTNode | None" = None
        self.symbol: int | None = None  # set on leaves


class WaveletTree(Serializable):
    """Huffman-shaped wavelet tree with rank/select/access.

    Parameters
    ----------
    sequence:
        The sequence of integer symbols to index.  A ``bytes`` object is also
        accepted (each byte is a symbol), which is the typical use for BWT
        strings.
    """

    def __init__(self, sequence: Sequence[int] | bytes | np.ndarray):
        if isinstance(sequence, (bytes, bytearray)):
            seq = np.frombuffer(bytes(sequence), dtype=np.uint8).astype(np.int64)
        else:
            seq = np.asarray(sequence, dtype=np.int64)
        self._length = int(seq.size)
        self._counts = Counter(int(c) for c in seq)
        if self._length == 0:
            self._root: _WTNode | None = None
            self._code = None
            return
        self._code = HuffmanCode(self._counts)
        self._root = self._build(seq, depth=0, symbols=set(self._counts))

    def _build(self, seq: np.ndarray, depth: int, symbols: set[int]) -> _WTNode:
        node = _WTNode()
        if len(symbols) == 1:
            node.symbol = next(iter(symbols))
            return node
        assert self._code is not None
        # Partition symbols by the bit at `depth` of their Huffman codeword.
        left_syms = {s for s in symbols if self._code.code(s)[depth] == 0}
        right_syms = symbols - left_syms
        codes = self._code
        bits = np.fromiter((codes.code(int(c))[depth] for c in seq), dtype=bool, count=seq.size)
        node.bitmap = BitVector(bits)
        node.left = self._build(seq[~bits], depth + 1, left_syms)
        node.right = self._build(seq[bits], depth + 1, right_syms)
        return node

    # -- persistence --------------------------------------------------------------

    def _write_node(self, writer: ChunkWriter, node: _WTNode) -> None:
        if node.symbol is not None:
            writer.chunk("NODE", struct.pack("<Bq", 1, node.symbol))
            return
        writer.chunk("NODE", struct.pack("<Bq", 0, 0))
        assert node.bitmap is not None and node.left is not None and node.right is not None
        writer.child("BMAP", node.bitmap)
        self._write_node(writer, node.left)
        self._write_node(writer, node.right)

    @classmethod
    def _read_node(cls, reader: ChunkReader) -> _WTNode:
        payload = reader.chunk("NODE")
        if len(payload) != 9:
            raise CorruptedFileError("malformed wavelet tree node")
        is_leaf, symbol = struct.unpack("<Bq", payload)
        node = _WTNode()
        if is_leaf:
            node.symbol = int(symbol)
            return node
        node.bitmap = reader.child("BMAP", BitVector)
        node.left = cls._read_node(reader)
        node.right = cls._read_node(reader)
        return node

    def write(self, fp: BinaryIO) -> None:
        """Serialise symbol counts, the Huffman codebook and the node bitmaps."""
        writer = ChunkWriter(fp)
        writer.header("WaveletTree")
        writer.int("NLEN", self._length)
        symbols = sorted(self._counts)
        writer.array("SYMS", np.array(symbols, dtype=np.int64))
        writer.array("FREQ", np.array([self._counts[s] for s in symbols], dtype=np.int64))
        if self._length:
            assert self._code is not None and self._root is not None
            writer.child("HUFF", self._code)
            self._write_node(writer, self._root)

    @classmethod
    def read(cls, fp: BinaryIO) -> "WaveletTree":
        """Read a wavelet tree written by :meth:`write` (no rebuild from the sequence)."""
        reader = ChunkReader(fp)
        reader.header("WaveletTree")
        length = reader.int("NLEN")
        symbols = reader.array("SYMS").astype(np.int64, copy=False)
        freqs = reader.array("FREQ").astype(np.int64, copy=False)
        if symbols.size != freqs.size or length < 0 or int(freqs.sum()) != length:
            raise CorruptedFileError("wavelet tree symbol counts are inconsistent")
        tree = cls.__new__(cls)
        tree._length = int(length)
        tree._counts = Counter({int(s): int(f) for s, f in zip(symbols, freqs)})
        if length == 0:
            tree._root = None
            tree._code = None
            return tree
        tree._code = reader.child("HUFF", HuffmanCode)
        tree._root = cls._read_node(reader)
        return tree

    # -- basic protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    @property
    def alphabet(self) -> list[int]:
        """Distinct symbols present in the sequence, ascending."""
        return sorted(self._counts)

    def count(self, symbol: int) -> int:
        """Total occurrences of ``symbol`` in the sequence."""
        return self._counts.get(symbol, 0)

    def size_in_bits(self) -> int:
        """Approximate space usage of all bitmaps, in bits."""
        total = 0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            if node.bitmap is not None:
                total += node.bitmap.size_in_bits()
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        return total

    # -- queries -------------------------------------------------------------------

    def access(self, i: int) -> int:
        """Return the symbol stored at position ``i``."""
        if not 0 <= i < self._length:
            raise IndexError(f"position {i} out of range for length {self._length}")
        node = self._root
        assert node is not None
        while node.symbol is None:
            assert node.bitmap is not None
            bit = node.bitmap[i]
            if bit:
                i = node.bitmap.rank1(i)
                node = node.right
            else:
                i = node.bitmap.rank0(i)
                node = node.left
            assert node is not None
        return node.symbol

    def rank(self, symbol: int, i: int) -> int:
        """Number of occurrences of ``symbol`` in positions ``[0, i)``."""
        if symbol not in self._counts:
            return 0
        i = max(0, min(i, self._length))
        if i == 0:
            return 0
        assert self._code is not None and self._root is not None
        node = self._root
        for bit in self._code.code(symbol):
            if node.symbol is not None:
                break
            assert node.bitmap is not None
            if bit:
                i = node.bitmap.rank1(i)
                node = node.right
            else:
                i = node.bitmap.rank0(i)
                node = node.left
            assert node is not None
            if i == 0:
                return 0
        return i

    def select(self, symbol: int, j: int) -> int:
        """Position of the ``j``-th occurrence (1-based) of ``symbol``."""
        if j < 1 or j > self._counts.get(symbol, 0):
            raise ValueError(f"select({symbol!r}, {j}) out of range")
        assert self._code is not None and self._root is not None
        # Walk down to the leaf collecting the path, then walk back up
        # translating the leaf-local index into a root position.
        path: list[tuple[_WTNode, int]] = []
        node = self._root
        for bit in self._code.code(symbol):
            if node.symbol is not None:
                break
            path.append((node, bit))
            node = node.right if bit else node.left
            assert node is not None
        pos = j - 1
        for parent, bit in reversed(path):
            assert parent.bitmap is not None
            pos = parent.bitmap.select(bit, pos + 1)
        return pos

    def rank_all(self, i: int) -> dict[int, int]:
        """Rank of every alphabet symbol at position ``i`` (used by backtracking search)."""
        return {symbol: self.rank(symbol, i) for symbol in self._counts}

    # -- batch kernels -------------------------------------------------------------

    def access_many(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`access`: the symbols at ``positions``.

        Positions taking the same root-to-leaf path are resolved together, so
        each wavelet-tree node is visited once per *batch* with one batched
        rank per bitmap instead of once per position.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) >= self._length:
            raise IndexError(f"position out of range for length {self._length}")
        out = np.empty(pos.size, dtype=np.int64)
        assert self._root is not None
        stack: list[tuple[_WTNode, np.ndarray, np.ndarray]] = [(self._root, np.arange(pos.size), pos)]
        while stack:
            node, slots, local = stack.pop()
            if node.symbol is not None:
                out[slots] = node.symbol
                continue
            assert node.bitmap is not None and node.left is not None and node.right is not None
            bits = node.bitmap.get_many(local).astype(bool)
            ones_before = node.bitmap.rank1_many(local)
            if bits.all():
                stack.append((node.right, slots, ones_before))
            elif not bits.any():
                stack.append((node.left, slots, local - ones_before))
            else:
                stack.append((node.right, slots[bits], ones_before[bits]))
                stack.append((node.left, slots[~bits], (local - ones_before)[~bits]))
        return out

    def access_rank_many(
        self, positions: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(access(i), rank(access(i), i))`` for every position, in one descent.

        The leaf-local index reached by the access descent *is* the rank of
        the accessed symbol before the position, so the LF-mapping of the
        FM-index gets both ingredients from a single batched walk.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        if int(pos.min()) < 0 or int(pos.max()) >= self._length:
            raise IndexError(f"position out of range for length {self._length}")
        symbols = np.empty(pos.size, dtype=np.int64)
        ranks = np.empty(pos.size, dtype=np.int64)
        assert self._root is not None
        stack: list[tuple[_WTNode, np.ndarray, np.ndarray]] = [(self._root, np.arange(pos.size), pos)]
        while stack:
            node, slots, local = stack.pop()
            if node.symbol is not None:
                symbols[slots] = node.symbol
                ranks[slots] = local
                continue
            assert node.bitmap is not None and node.left is not None and node.right is not None
            bits = node.bitmap.get_many(local).astype(bool)
            ones_before = node.bitmap.rank1_many(local)
            if bits.all():
                stack.append((node.right, slots, ones_before))
            elif not bits.any():
                stack.append((node.left, slots, local - ones_before))
            else:
                stack.append((node.right, slots[bits], ones_before[bits]))
                stack.append((node.left, slots[~bits], (local - ones_before)[~bits]))
        return symbols, ranks

    def rank_many(self, symbol: int, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rank`: occurrences of ``symbol`` before every position.

        One walk down the symbol's Huffman path with a batched bitmap rank per
        level (instead of one full descent per position).
        """
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if symbol not in self._counts:
            return np.zeros(pos.size, dtype=np.int64)
        assert self._code is not None and self._root is not None
        i = np.clip(pos, 0, self._length)
        node = self._root
        for bit in self._code.code(symbol):
            if node.symbol is not None:
                break
            assert node.bitmap is not None
            i = node.bitmap.rank1_many(i) if bit else node.bitmap.rank0_many(i)
            node = node.right if bit else node.left
            assert node is not None
        return i

    def select_many(self, symbol: int, ranks: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`select`: positions of the ``j``-th occurrences of ``symbol``."""
        j = np.asarray(ranks, dtype=np.int64)
        if j.size == 0:
            return np.zeros(0, dtype=np.int64)
        total = self._counts.get(symbol, 0)
        if int(j.min()) < 1 or int(j.max()) > total:
            raise ValueError(f"select({symbol!r}, ...) rank out of range")
        assert self._code is not None and self._root is not None
        path: list[tuple[_WTNode, int]] = []
        node = self._root
        for bit in self._code.code(symbol):
            if node.symbol is not None:
                break
            path.append((node, bit))
            node = node.right if bit else node.left
            assert node is not None
        pos = j - 1
        for parent, bit in reversed(path):
            assert parent.bitmap is not None
            ranks_up = pos + 1
            pos = parent.bitmap.select1_many(ranks_up) if bit else parent.bitmap.select0_many(ranks_up)
        return pos

    def to_list(self) -> list[int]:
        """Reconstruct the full sequence (mainly for testing)."""
        return [self.access(i) for i in range(self._length)]
