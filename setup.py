"""Setuptools entry point (kept for environments without the ``wheel`` package).

All package metadata lives in ``pyproject.toml``; this shim only exists so
legacy ``python setup.py``-style tooling keeps working.
"""

from setuptools import setup

setup()
