"""Text-oriented search over a Medline-like corpus (the M01--M11 query set).

Shows the interplay of the three SXSI ingredients on text-heavy queries: the
FM-index answers the string predicates, the planner chooses between the
top-down automaton run and the bottom-up run seeded from text matches, and the
plain text store covers mixed-content semantics.

Run with::

    python examples/medline_text_search.py [num_citations]
"""

from __future__ import annotations

import sys
import time

from repro import Document, EvaluationOptions, IndexOptions
from repro.workloads import MEDLINE_QUERIES, generate_medline_xml


def main(num_citations: int = 300) -> None:
    print(f"generating Medline-like corpus with {num_citations} citations ...")
    xml = generate_medline_xml(num_citations=num_citations, seed=7)
    doc = Document.from_string(xml, IndexOptions(sample_rate=16))
    print(f"document: {len(xml) / 1024:.0f} KiB, {doc.num_nodes} nodes, {doc.num_texts} texts\n")

    # Raw text-index operations (Section 3.2 of the paper).
    collection = doc.text_collection
    for pattern in ("plus", "blood", "the"):
        print(
            f"pattern {pattern!r:12s} global occurrences: {collection.global_count(pattern):6d}   "
            f"texts containing it: {collection.contains_count(pattern):6d}"
        )
    print()

    header = f"{'query':5s} {'results':>8s} {'strategy':>11s} {'fm':>4s} {'ms':>9s}"
    print(header)
    print("-" * len(header))
    for name, query in MEDLINE_QUERIES.items():
        started = time.perf_counter()
        result = doc.evaluate(query, want_nodes=False)
        elapsed = (time.perf_counter() - started) * 1000
        plan = result.plan
        print(f"{name:5s} {result.count:8d} {plan.strategy:>11s} {'yes' if plan.uses_fm_index else 'no':>4s} {elapsed:9.1f}")

    # Forcing the top-down strategy shows what the bottom-up run saves.
    query = MEDLINE_QUERIES["M02"]
    bottom_up = doc.evaluate(query, want_nodes=False)
    top_down = doc.evaluate(query, EvaluationOptions(allow_bottom_up=False), want_nodes=False)
    print(
        f"\nM02 visited nodes: bottom-up {bottom_up.statistics.visited_nodes}, "
        f"forced top-down {top_down.statistics.visited_nodes}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
