"""Quickstart: index a small XML document and run XPath Core+ queries.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Document, DocumentStore, EvaluationOptions, IndexOptions, QueryService


def main() -> None:
    xml = """
    <catalog>
      <book id="b1" year="2008"><title>Succinct Data Structures</title>
        <author>Jacobson</author>
        <summary>bit vectors with rank and select in constant time</summary></book>
      <book id="b2" year="2010"><title>Fully-Functional Succinct Trees</title>
        <author>Sadakane</author><author>Navarro</author>
        <summary>balanced parentheses and the range min-max tree</summary></book>
      <book id="b3" year="2015"><title>Fast In-Memory XPath Search</title>
        <author>Arroyuelo</author><author>Maneth</author>
        <summary>compressed indexes, tree automata and jumping</summary></book>
    </catalog>
    """

    # Index the document: FM-index for the texts, balanced parentheses + tag
    # sequence for the tree.  The index *replaces* the document.
    doc = Document.from_string(xml, IndexOptions(sample_rate=16))
    print(f"indexed {doc.num_nodes} nodes, {doc.num_texts} texts, {doc.num_tags} labels")

    # Per-component size breakdown (tree / tag tables / text index / plain store).
    stats = doc.stats()
    for name, entry in stats["components"].items():
        print(f"  {name:<11} {entry['bytes']:>6} bytes")
    print(f"  {'total':<11} {stats['total_bytes']:>6} bytes\n")

    # Counting, materialising and serialising queries.
    print("count //book                       =", doc.count("//book"))
    print("count //book[author]/title          =", doc.count("//book[author]/title"))
    print('count //book[contains(., "automata")]=', doc.count('//book[contains(., "automata")]'))
    print()

    for rendered in doc.serialize('//book[ .//summary[contains(., "parentheses")] ]/title'):
        print("selected:", rendered)
    print()

    # Inspect how a query is evaluated (strategy + compiled automaton).
    result = doc.evaluate('//summary[contains(., "tree")]')
    print("strategy:", result.plan.describe())
    print("visited nodes:", result.statistics.visited_nodes, "of", doc.num_nodes)
    print()

    # The evaluator optimisations can be toggled individually (Figure 12).
    naive = doc.evaluate("//book//author", EvaluationOptions.naive())
    tuned = doc.evaluate("//book//author")
    print(f"//book//author: naive visited {naive.statistics.visited_nodes} nodes,"
          f" optimised visited {tuned.statistics.visited_nodes}\n")

    # Build once, save, serve from a sharded store (no XML reparse on load).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "catalog.sxsi"
        doc.save(path)
        loaded = Document.load(path)
        print(f"saved {path.stat().st_size} bytes; reloaded count //book =", loaded.count("//book"))

        store = DocumentStore(Path(tmp) / "store", num_shards=4, cache_size=2)
        store.add("catalog", doc)
        store.add_xml("more", "<catalog><book><title>Managing Gigabytes</title></book></catalog>")
        print("store count_all //book       =", store.count_all("//book"))

        # Serve repeated/batch queries: plan cache + scatter-gather workers.
        service = QueryService(store, max_workers=2)
        for result in service.run_many(["//book", "//book/title"]):
            print(f"service {result.query:<13} total={result.total} "
                  f"across {result.num_documents} documents")
        print("plan cache:", service.cache_info()["plan_cache"])


if __name__ == "__main__":
    main()
