"""Tree-oriented queries over an XMark-like auction document (the X01--X17 set).

Generates a synthetic auction site, indexes it, and compares the succinct
automaton engine against the pointer-DOM baseline on the XPathMark queries,
reporting counts, visited nodes and running times.

Run with::

    python examples/xmark_auction_queries.py [scale]
"""

from __future__ import annotations

import sys
import time

from repro import Document
from repro.baseline import DomEngine
from repro.workloads import XMARK_QUERIES, generate_xmark_xml
from repro.xmlmodel import build_model


def main(scale: float = 0.5) -> None:
    print(f"generating XMark document at scale {scale} ...")
    xml = generate_xmark_xml(scale=scale, seed=42)
    model = build_model(xml)
    print(f"document: {len(xml) / 1024:.0f} KiB, {model.num_nodes} nodes, {model.num_texts} texts")

    started = time.perf_counter()
    doc = Document.from_model(model)
    print(f"SXSI indexing took {time.perf_counter() - started:.2f}s")
    dom = DomEngine(model)

    header = f"{'query':5s} {'count':>7s} {'sxsi ms':>9s} {'dom ms':>9s} {'visited':>8s} {'jumps':>6s}"
    print("\n" + header)
    print("-" * len(header))
    for name, query in XMARK_QUERIES.items():
        started = time.perf_counter()
        result = doc.evaluate(query, want_nodes=False)
        sxsi_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        dom_count = dom.count(query)
        dom_ms = (time.perf_counter() - started) * 1000
        assert dom_count == result.count, f"{name}: engines disagree"
        stats = result.statistics
        print(f"{name:5s} {result.count:7d} {sxsi_ms:9.1f} {dom_ms:9.1f} {stats.visited_nodes:8d} {stats.jumps:6d}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
