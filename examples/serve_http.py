"""Serve a small XMark corpus over HTTP and query it with ``ReproClient``.

Builds a store of XMark documents in a temporary directory, starts the
dependency-free :class:`~repro.server.ReproServer` on a free port, and then
talks to it the way a deployment would: health probe, batch query, a single
query with node materialisation, an ingest round-trip over the wire, and the
Prometheus metrics page.

Usage::

    python examples/serve_http.py [scale] [num_docs]

(scale defaults to 0.05, num_docs to 6; the test suite runs it small).
"""

from __future__ import annotations

import sys
import tempfile

from repro import DocumentStore, IndexOptions, QueryService
from repro.client import ReproClient
from repro.server import ReproServer
from repro.workloads import generate_xmark_xml

QUERIES = [
    "//item",
    "//item/name",
    '//keyword[contains(., "gold")]',
    "//people/person/name",
]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    num_docs = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    with tempfile.TemporaryDirectory() as root:
        store = DocumentStore(root, num_shards=8, cache_size=4)
        for i in range(num_docs):
            store.add_xml(f"xmark-{i:02d}", generate_xmark_xml(scale=scale, seed=300 + i))
        service = QueryService(store, max_workers=2)

        with ReproServer(service) as server:
            print(f"serving {len(store)} XMark documents at {server.url}")
            client = ReproClient(*server.address)

            health = client.healthz()
            print(f"healthz: {health['status']}")

            # One HTTP request, one corpus sweep, four answers.
            print("\nbatch query over HTTP:")
            for result in client.run_many(QUERIES):
                shard_count = len(result.shard_timings)
                print(f"  {result.query:<35} total={result.total:<5} shards={shard_count}")

            # Node materialisation travels too.
            nodes = client.run("//people/person", want_nodes=True)
            sample_doc = next(iter(sorted(nodes.counts)))
            print(f"\n//people/person nodes in {sample_doc}: {nodes.nodes[sample_doc][:5]} ...")

            # Ingest over the wire: the server parses, indexes and shards.
            ingested = client.put_document(
                "uploaded", "<site><item><name>wire gold</name></item></site>", IndexOptions(sample_rate=16)
            )
            print(f"\ningested {ingested['doc_id']!r} into shard {ingested['shard']}")
            print(f"  //item total is now {client.total_count('//item')}")
            print(f"  index bytes: {client.document_stats('uploaded')['total_bytes']}")
            client.delete_document("uploaded")

            page = client.metrics_text()
            requests_served = sum(
                1 for line in page.splitlines() if line.startswith("repro_http_requests_total{")
            )
            print(f"\nmetrics: {requests_served} (route, method, status) request counters")
    print("server stopped cleanly")


if __name__ == "__main__":
    main()
