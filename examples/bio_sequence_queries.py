"""Biological sequence queries: RLCSA text index + PSSM predicates (Section 6.7).

Builds a gene-annotation document (Figure 17's DTD) whose DNA content is
highly repetitive, indexes it with the run-length (RLCSA-style) text index,
registers Jaspar-like scoring matrices and runs the PSSM queries of Figure 18.

Run with::

    python examples/bio_sequence_queries.py [num_genes]
"""

from __future__ import annotations

import sys
import time

from repro import Document, IndexOptions
from repro.workloads import generate_bio_xml, jaspar_like_matrices


def main(num_genes: int = 30) -> None:
    print(f"generating gene annotation document with {num_genes} genes ...")
    xml = generate_bio_xml(num_genes=num_genes, promoter_length=300, exon_length=120, seed=11)
    doc = Document.from_string(xml, IndexOptions(text_index="rlcsa", sample_rate=16))
    print(f"document: {len(xml) / 1024:.0f} KiB, {doc.num_nodes} nodes, {doc.num_texts} texts")
    print(f"BWT runs in the run-length text index: {doc.text_collection.num_runs}\n")

    matrices = jaspar_like_matrices()
    thresholds = {"M1": 4.0, "M2": 8.0, "M3": 10.0}
    for name, matrix in matrices.items():
        doc.register_pssm(name, matrix, threshold=matrix.max_score() - thresholds[name])

    queries = [
        "//promoter[ PSSM( ., {m})]",
        "//exon[ .//sequence[ PSSM( ., {m}) ] ]",
        "//*[ PSSM(., {m}) ]",
    ]
    header = f"{'query':45s} {'results':>8s} {'ms':>9s}"
    print(header)
    print("-" * len(header))
    for template in queries:
        for name in matrices:
            query = template.format(m=name)
            started = time.perf_counter()
            count = doc.count(query)
            elapsed = (time.perf_counter() - started) * 1000
            print(f"{query:45s} {count:8d} {elapsed:9.1f}")

    # Plain structural queries work over the same document, of course.
    print("\ngenes with at least two transcripts:", doc.count("//gene[transcript/following-sibling::transcript]"))
    print("protein-coding genes:", doc.count('//gene[ biotype = "protein_coding" ]'))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
