"""End-to-end smoke of the deployed shape: a real ``repro-serve`` process.

Run by the CI ``e2e-smoke`` job (and runnable locally)::

    PYTHONPATH=src python scripts/e2e_smoke.py

It builds a temporary XMark store, launches ``python -m repro.server`` as a
separate OS process, waits for ``/healthz``, verifies a batch response over
the socket is value-identical to the in-process ``QueryService.run_many``,
does an ingest round-trip, strict-parses the ``/metrics`` page (every layer's
families must be present and well-formed) and checks ``/v1/debug/workload``
recorded the batch, then sends SIGTERM and asserts the server exits cleanly
(graceful shutdown, exit code 0).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro import DocumentStore, QueryService
from repro.client import ReproClient
from repro.workloads import generate_xmark_xml

QUERIES = ["//item", "//item/name", '//keyword[contains(., "gold")]']
PORT = int(os.environ.get("E2E_PORT", "8765"))


def wait_for_health(client: ReproClient, deadline: float = 30.0) -> None:
    started = time.monotonic()
    while True:
        try:
            if client.healthz()["status"] == "ok":
                return
        except Exception:
            pass
        if time.monotonic() - started > deadline:
            raise RuntimeError("server did not become healthy in time")
        time.sleep(0.2)


def main() -> int:
    with tempfile.TemporaryDirectory() as root:
        store = DocumentStore(root, num_shards=8, cache_size=4)
        for i in range(6):
            store.add_xml(f"xmark-{i:02d}", generate_xmark_xml(scale=0.02, seed=700 + i))
        expected = {r.query: r for r in QueryService(store, max_workers=1).run_many(QUERIES)}

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "--root",
                root,
                "--port",
                str(PORT),
                "--cache-size",
                "4",
                "--workers",
                "4",
            ],
        )
        try:
            with ReproClient("127.0.0.1", PORT, retries=0, timeout=10.0) as client:
                wait_for_health(client)

                results = client.run_many(QUERIES)
                for result in results:
                    reference = expected[result.query]
                    assert result.counts == reference.counts, result.query
                    assert result.total == reference.total, result.query
                    assert result.failures == reference.failures, result.query
                print(f"e2e: batch of {len(results)} queries matches in-process run_many")

                created = client.put_document("wire", "<site><item><name>e2e</name></item></site>")
                assert client.run("//item", doc_ids=["wire"]).total == 1
                assert client.document_stats("wire")["total_bytes"] > 0
                client.delete_document("wire")
                print(f"e2e: ingest round-trip ok (shard {created['shard']})")

                # The strict parser raises on any exposition-format slip
                # (duplicate headers, unsorted labels, broken histograms).
                families = client.metrics()
                for family in (
                    "repro_http_requests_total",
                    "repro_http_request_seconds",
                    "repro_engine_queries_total",
                    "repro_store_cache_hits_total",
                    "repro_storage_mapped_loads_total",
                    "repro_service_sweep_seconds",
                    "repro_process_open_fds",
                ):
                    assert family in families, f"missing metric family {family}"
                print(f"e2e: metrics page strict-parses ({len(families)} families)")

                workload = client.debug_workload()
                assert workload["enabled"], "workload analytics disabled by default?"
                assert workload["total_queries"] >= len(QUERIES), workload["total_queries"]
                assert workload["shapes"], "no query shapes recorded"
                assert workload["shapes"][0]["latency"]["count"] >= 1
                assert workload["slow_queries"], "no slow queries recorded"
                print(f"e2e: workload analytics ok ({workload['num_shapes']} shapes)")

            process.send_signal(signal.SIGTERM)
            exit_code = process.wait(timeout=30)
            assert exit_code == 0, f"server exited with {exit_code} after SIGTERM"
            print("e2e: clean shutdown (exit code 0)")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
    return 0


if __name__ == "__main__":
    sys.exit(main())
