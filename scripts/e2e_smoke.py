"""End-to-end smoke of the deployed shapes: one server, then a 3-node fleet.

Run by the CI ``e2e-smoke`` job (and runnable locally)::

    PYTHONPATH=src python scripts/e2e_smoke.py

**Phase 1 (single node)** builds a temporary XMark store, launches
``python -m repro.server`` as a separate OS process, waits for ``/healthz``,
verifies a batch response over the socket is value-identical to the
in-process ``QueryService.run_many``, does an ingest round-trip,
strict-parses the ``/metrics`` page (every layer's families must be present
and well-formed) and checks ``/v1/debug/workload`` recorded the batch, then
sends SIGTERM and asserts the server exits cleanly (exit code 0).

**Phase 2 (docker-free fleet)** launches three ``repro-serve`` subprocesses
plus one ``python -m repro.coordinator`` in front, ingests documents through
the coordinator (consistent-hash routing places some on every node), checks a
scatter-gathered batch matches per-document expectations, then **SIGKILLs one
node mid-batch** and asserts the next batch comes back *degraded, not
failed*: partial counts plus ``DocumentFailure`` entries naming the lost node
(``node:<name>``/``NodeUnavailableError``).  It also waits for the health
probes to mark the corpse down, strict-parses the coordinator's
``repro_coordinator_*`` metric families, and asserts the coordinator and the
surviving nodes all SIGTERM-exit with code 0.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro import Document, DocumentStore, QueryService
from repro.client import CoordinatorClient, ReproClient
from repro.coordinator import HashRing
from repro.workloads import generate_xmark_xml

QUERIES = ["//item", "//item/name", '//keyword[contains(., "gold")]']
PORT = int(os.environ.get("E2E_PORT", "8765"))


def wait_for_health(client: ReproClient, deadline: float = 30.0) -> None:
    started = time.monotonic()
    while True:
        try:
            if client.healthz()["status"] == "ok":
                return
        except Exception:
            pass
        if time.monotonic() - started > deadline:
            raise RuntimeError("server did not become healthy in time")
        time.sleep(0.2)


def fleet_smoke() -> None:
    """Three ``repro-serve`` nodes + one coordinator; kill a node mid-batch."""
    node_names = ["n0", "n1", "n2"]
    node_ports = [PORT + 1 + i for i in range(3)]
    coordinator_port = PORT + 4

    # Pick document ids whose ring placement covers every node, using the same
    # stable blake2b ring the coordinator builds -- deterministic, no flakes.
    ring = HashRing(node_names)
    docs_by_node: dict[str, list[str]] = {name: [] for name in node_names}
    index = 0
    while any(len(ids) < 3 for ids in docs_by_node.values()):
        doc_id = f"fleet-{index:03d}"
        owner = ring.nodes_for(doc_id)[0]
        if len(docs_by_node[owner]) < 3:
            docs_by_node[owner].append(doc_id)
        index += 1
    corpus = {
        doc_id: generate_xmark_xml(scale=0.01, seed=900 + i)
        for i, doc_id in enumerate(sorted(d for ids in docs_by_node.values() for d in ids))
    }
    expected = {
        query: {doc_id: Document.from_string(xml).count(query) for doc_id, xml in corpus.items()}
        for query in QUERIES
    }

    with tempfile.TemporaryDirectory() as root:
        processes: list[subprocess.Popen] = []
        try:
            for name, port in zip(node_names, node_ports):
                os.makedirs(os.path.join(root, name))
                processes.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro.server",
                            "--root",
                            os.path.join(root, name),
                            "--port",
                            str(port),
                            "--workers",
                            "4",
                        ],
                    )
                )
            coordinator = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.coordinator",
                    "--port",
                    str(coordinator_port),
                    "--probe-interval",
                    "0.3",
                    "--fail-after",
                    "2",
                ]
                + [
                    f"--node={name}=127.0.0.1:{port}"
                    for name, port in zip(node_names, node_ports)
                ],
            )
            processes.append(coordinator)

            with CoordinatorClient(
                "127.0.0.1", coordinator_port, retries=0, timeout=10.0
            ) as client:
                wait_for_health(client)  # "ok" only once every node probes healthy
                for doc_id, xml in corpus.items():
                    client.put_document(doc_id, xml)
                per_node = client.stats()["nodes"]
                placed = {n: per_node[n]["store"]["num_documents"] for n in node_names}
                assert placed == {n: len(docs_by_node[n]) for n in node_names}, placed
                print(f"e2e-fleet: {len(corpus)} documents routed across 3 nodes {placed}")

                results = client.run_many(QUERIES)
                for result in results:
                    reference = expected[result.query]
                    assert result.counts == reference, result.query
                    assert not result.failures, result.failures
                print(f"e2e-fleet: scatter-gathered batch of {len(results)} queries matches")

                # SIGKILL one node mid-batch: no graceful shutdown, the port
                # just goes dead.  The very next batch must come back degraded
                # -- partial counts plus failures naming the lost node -- not
                # as an exception.
                victim = node_names[1]
                processes[1].kill()
                processes[1].wait()
                survivors = set(corpus) - set(docs_by_node[victim])
                results = client.run_many(QUERIES)
                for result in results:
                    reference = {
                        d: c for d, c in expected[result.query].items() if d in survivors
                    }
                    assert result.counts == reference, result.query
                    lost = [f for f in result.failures if f.doc_id == f"node:{victim}"]
                    assert lost, f"no failure names the killed node: {result.failures}"
                    assert lost[0].error == "NodeUnavailableError"
                    assert victim in lost[0].message
                print(f"e2e-fleet: batch degraded (not failed) after SIGKILL of {victim}")

                deadline = time.monotonic() + 10.0
                while victim in client.healthy_nodes():
                    assert time.monotonic() < deadline, "probes never marked the corpse down"
                    time.sleep(0.1)
                assert client.healthz()["status"] == "degraded"
                print("e2e-fleet: health probes marked the corpse down")

                families = client.metrics()
                for family in (
                    "repro_coordinator_node_requests_total",
                    "repro_coordinator_node_errors_total",
                    "repro_coordinator_node_healthy",
                    "repro_coordinator_health_transitions_total",
                    "repro_coordinator_nodes_healthy",
                ):
                    assert family in families, f"missing metric family {family}"
                print("e2e-fleet: coordinator metrics page strict-parses")

            for process in [coordinator, processes[0], processes[2]]:
                process.send_signal(signal.SIGTERM)
            for label, process in (
                ("coordinator", coordinator),
                (node_names[0], processes[0]),
                (node_names[2], processes[2]),
            ):
                exit_code = process.wait(timeout=30)
                assert exit_code == 0, f"{label} exited with {exit_code} after SIGTERM"
            print("e2e-fleet: clean shutdown of the coordinator and survivors")
        finally:
            for process in processes:
                if process.poll() is None:
                    process.kill()
                    process.wait()


def main() -> int:
    with tempfile.TemporaryDirectory() as root:
        store = DocumentStore(root, num_shards=8, cache_size=4)
        for i in range(6):
            store.add_xml(f"xmark-{i:02d}", generate_xmark_xml(scale=0.02, seed=700 + i))
        expected = {r.query: r for r in QueryService(store, max_workers=1).run_many(QUERIES)}

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "--root",
                root,
                "--port",
                str(PORT),
                "--cache-size",
                "4",
                "--workers",
                "4",
            ],
        )
        try:
            with ReproClient("127.0.0.1", PORT, retries=0, timeout=10.0) as client:
                wait_for_health(client)

                results = client.run_many(QUERIES)
                for result in results:
                    reference = expected[result.query]
                    assert result.counts == reference.counts, result.query
                    assert result.total == reference.total, result.query
                    assert result.failures == reference.failures, result.query
                print(f"e2e: batch of {len(results)} queries matches in-process run_many")

                created = client.put_document("wire", "<site><item><name>e2e</name></item></site>")
                assert client.run("//item", doc_ids=["wire"]).total == 1
                assert client.document_stats("wire")["total_bytes"] > 0
                client.delete_document("wire")
                print(f"e2e: ingest round-trip ok (shard {created['shard']})")

                # The strict parser raises on any exposition-format slip
                # (duplicate headers, unsorted labels, broken histograms).
                families = client.metrics()
                for family in (
                    "repro_http_requests_total",
                    "repro_http_request_seconds",
                    "repro_engine_queries_total",
                    "repro_store_cache_hits_total",
                    "repro_storage_mapped_loads_total",
                    "repro_service_sweep_seconds",
                    "repro_process_open_fds",
                ):
                    assert family in families, f"missing metric family {family}"
                print(f"e2e: metrics page strict-parses ({len(families)} families)")

                workload = client.debug_workload()
                assert workload["enabled"], "workload analytics disabled by default?"
                assert workload["total_queries"] >= len(QUERIES), workload["total_queries"]
                assert workload["shapes"], "no query shapes recorded"
                assert workload["shapes"][0]["latency"]["count"] >= 1
                assert workload["slow_queries"], "no slow queries recorded"
                print(f"e2e: workload analytics ok ({workload['num_shapes']} shapes)")

            process.send_signal(signal.SIGTERM)
            exit_code = process.wait(timeout=30)
            assert exit_code == 0, f"server exited with {exit_code} after SIGTERM"
            print("e2e: clean shutdown (exit code 0)")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
    fleet_smoke()
    return 0


if __name__ == "__main__":
    sys.exit(main())
