"""Hold ``docs/`` to the code: diff documented tables against live definitions.

Run by the CI ``docs-check`` job (and runnable locally)::

    PYTHONPATH=src python scripts/check_docs.py

Two kinds of tables are machine-checked:

* **Route tables** in ``docs/http-api.md``, marked
  ``<!-- route-table: repro-serve -->`` / ``<!-- route-table:
  repro-coordinator -->``.  The script instantiates both servers (never
  started -- no sockets) and compares each documented ``(METHOD, path)``
  pair against the server's ``route_table`` registry.
* **Flag tables** in ``docs/operations.md``, marked
  ``<!-- flag-table: repro-serve -->`` / ``<!-- flag-table:
  repro-coordinator -->``.  Every ``--flag`` token in a table's first
  column is compared against the ``argparse`` option strings of the
  matching CLI's ``build_parser()``.

A route or flag present in the code but missing from the docs fails, and so
does a documented one the code no longer has -- renames must land in both
places in the same commit.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FLAG_RE = re.compile(r"--[\w][\w-]*")


def extract_table(markdown: str, marker: str, path: Path) -> list[list[str]]:
    """The body rows (header and separator dropped) of the table after *marker*."""
    index = markdown.find(marker)
    if index < 0:
        raise SystemExit(f"{path}: marker {marker!r} not found")
    rows = []
    for line in markdown[index + len(marker) :].splitlines():
        stripped = line.strip()
        if stripped.startswith("|"):
            rows.append([cell.strip() for cell in stripped.strip("|").split("|")])
        elif rows:
            break
    if len(rows) < 3:
        raise SystemExit(f"{path}: no table follows marker {marker!r}")
    return rows[2:]


def documented_routes(markdown: str, name: str, path: Path) -> set[tuple[str, str]]:
    rows = extract_table(markdown, f"<!-- route-table: {name} -->", path)
    return {(row[0].upper(), row[1].strip("`")) for row in rows}


def documented_flags(markdown: str, name: str, path: Path) -> set[str]:
    rows = extract_table(markdown, f"<!-- flag-table: {name} -->", path)
    flags: set[str] = set()
    for row in rows:
        found = FLAG_RE.findall(row[0])
        if not found:
            raise SystemExit(f"{path}: flag-table {name!r} row has no --flag: {row[0]!r}")
        flags.update(found)
    return flags


def live_route_tables() -> dict[str, set[tuple[str, str]]]:
    from repro import DocumentStore, QueryService
    from repro.coordinator import CoordinatorServer
    from repro.server import ReproServer

    with tempfile.TemporaryDirectory() as root:
        server = ReproServer(QueryService(DocumentStore(root)))
        serve_routes = set(server.route_table)
    coordinator = CoordinatorServer(["n0=127.0.0.1:1"])
    return {
        "repro-serve": serve_routes,
        "repro-coordinator": set(coordinator.route_table),
    }


def live_flag_tables() -> dict[str, set[str]]:
    from repro.coordinator.__main__ import build_parser as coordinator_parser
    from repro.server.__main__ import build_parser as serve_parser

    tables = {}
    for name, parser in (
        ("repro-serve", serve_parser()),
        ("repro-coordinator", coordinator_parser()),
    ):
        tables[name] = {
            option
            for action in parser._actions
            for option in action.option_strings
            if option.startswith("--") and option != "--help"
        }
    return tables


def diff(kind: str, name: str, documented: set, live: set) -> list[str]:
    problems = []
    for item in sorted(live - documented):
        problems.append(f"{name}: {kind} {item} exists in the code but is not documented")
    for item in sorted(documented - live):
        problems.append(f"{name}: documented {kind} {item} does not exist in the code")
    return problems


def main() -> int:
    api_doc = REPO / "docs" / "http-api.md"
    ops_doc = REPO / "docs" / "operations.md"
    api_text = api_doc.read_text(encoding="utf-8")
    ops_text = ops_doc.read_text(encoding="utf-8")

    problems: list[str] = []
    for name, live in live_route_tables().items():
        documented = documented_routes(api_text, name, api_doc)
        problems += diff("route", name, documented, live)
        print(f"{name}: {len(live)} routes, {len(documented)} documented")
    for name, live in live_flag_tables().items():
        documented = documented_flags(ops_text, name, ops_doc)
        problems += diff("flag", name, documented, live)
        print(f"{name}: {len(live)} flags, {len(documented)} documented")

    if problems:
        print()
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        print(f"\n{len(problems)} doc/code mismatch(es)", file=sys.stderr)
        return 1
    print("docs match the code")
    return 0


if __name__ == "__main__":
    sys.exit(main())
