"""Merge ``BENCH_pr*.json`` runs into one perf-trajectory report.

Each PR's benchmark module writes a ``BENCH_pr<N>.json`` with a ``meta`` block
and a flat ``metrics`` dict; the committed ones plus any freshly produced runs
together describe how the repo's performance story evolved.  This script
merges them -- newest PR wins when two runs report the same metric -- and
prints a table of every metric against the committed baseline, flagging
values that sit outside their baseline tolerance::

    python scripts/bench_trajectory.py                 # all committed BENCH_pr*.json
    python scripts/bench_trajectory.py BENCH_pr8.json --out trajectory.json

Stdlib only (CI runs it without installing the package).  The ``--out`` JSON
carries the per-run metric series so nightly artifacts can be diffed across
dates, not just within one run.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

_PR_RE = re.compile(r"BENCH_pr(\d+)", re.IGNORECASE)


def _pr_number(path: Path) -> int:
    match = _PR_RE.search(path.name)
    return int(match.group(1)) if match else -1


def load_runs(paths: list[Path]) -> list[dict]:
    """The parsed runs, ordered oldest PR first (merge order: newest wins)."""
    runs = []
    for path in sorted(paths, key=lambda p: (_pr_number(p), p.name)):
        data = json.loads(path.read_text(encoding="utf-8"))
        if "metrics" not in data:
            raise SystemExit(f"{path}: not a benchmark run (no 'metrics' key)")
        runs.append(
            {
                "source": path.name,
                "pr": _pr_number(path),
                "meta": data.get("meta", {}),
                "metrics": data["metrics"],
            }
        )
    return runs


def build_trajectory(runs: list[dict], baseline: dict | None) -> dict:
    """Per-metric series across runs plus the merged (newest-wins) view."""
    series: dict[str, list[dict]] = {}
    merged: dict[str, float] = {}
    for run in runs:
        for name, value in run["metrics"].items():
            series.setdefault(name, []).append({"source": run["source"], "value": value})
            merged[name] = value
    metrics: dict[str, dict] = {}
    baseline_metrics = (baseline or {}).get("metrics", {})
    default_threshold = float((baseline or {}).get("threshold", 0.30))
    for name in sorted(series):
        entry: dict = {"series": series[name], "latest": merged[name]}
        spec = baseline_metrics.get(name)
        if spec is not None:
            base = float(spec["value"])
            limit = float(spec.get("threshold", default_threshold))
            higher = spec.get("direction", "higher") == "higher"
            bound = base * (1.0 - limit) if higher else base * (1.0 + limit)
            value = float(merged[name])
            entry["baseline"] = {
                "value": base,
                "direction": spec.get("direction", "higher"),
                "critical": bool(spec.get("critical", False)),
                "bound": round(bound, 3),
                "within": value >= bound if higher else value <= bound,
            }
        metrics[name] = entry
    return {"runs": runs, "metrics": metrics}


def print_report(trajectory: dict) -> int:
    """Human-readable table; returns the number of out-of-tolerance criticals."""
    runs = trajectory["runs"]
    print(f"perf trajectory across {len(runs)} run(s): " + ", ".join(r["source"] for r in runs))
    header = f"{'metric':<42} {'latest':>10} {'baseline':>10} {'bound':>10}  status"
    print(header)
    print("-" * len(header))
    critical_failures = 0
    for name, entry in trajectory["metrics"].items():
        latest = entry["latest"]
        spec = entry.get("baseline")
        if spec is None:
            print(f"{name:<42} {latest:>10} {'-':>10} {'-':>10}  unbaselined")
            continue
        if spec["within"]:
            status = "ok"
        elif spec["critical"]:
            status = "FAIL (critical)"
            critical_failures += 1
        else:
            status = "warn"
        print(f"{name:<42} {latest:>10} {spec['value']:>10} {spec['bound']:>10}  {status}")
    return critical_failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        type=Path,
        nargs="*",
        help="BENCH_pr*.json runs to merge (default: every BENCH_pr*.json beside this repo's root)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json",
        help="baseline.json to annotate tolerances from (default: the committed one)",
    )
    parser.add_argument("--out", type=Path, default=None, help="write the merged trajectory JSON here")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when a critical metric sits outside its baseline tolerance",
    )
    args = parser.parse_args(argv)

    paths = args.files or sorted((Path(__file__).resolve().parent.parent).glob("BENCH_pr*.json"))
    if not paths:
        parser.error("no BENCH_pr*.json runs found or given")
    baseline = None
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    else:
        print(f"note: baseline {args.baseline} not found; reporting without tolerances")

    trajectory = build_trajectory(load_runs(paths), baseline)
    critical_failures = print_report(trajectory)
    if args.out is not None:
        args.out.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if args.strict and critical_failures:
        print(f"{critical_failures} critical metric(s) out of tolerance", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
