"""Hand-checked evaluation results on small documents (all axes and predicates)."""

from __future__ import annotations

import pytest

from repro import Document, EvaluationOptions


@pytest.fixture(scope="module")
def doc():
    return Document.from_string(
        """
        <library>
          <shelf id="s1" floor="2">
            <book year="1999"><title>Compressed Indexes</title><author>Navarro</author>
              <chapter><title>Rank and Select</title><note>succinct</note></chapter>
              <chapter><title>Wavelet Trees</title></chapter>
            </book>
            <book year="2005"><title>Tree Automata</title><author>Maneth</author></book>
          </shelf>
          <shelf id="s2">
            <book year="2010"><title>XPath Evaluation</title><author>Nguyen</author>
              <chapter><title>Jumping</title><note>fast</note></chapter>
            </book>
            <magazine><title>SPE</title></magazine>
          </shelf>
        </library>
        """
    )


class TestAxes:
    def test_child_chain(self, doc):
        assert doc.count("/library/shelf/book") == 3
        assert doc.count("/library/shelf/book/title") == 3
        assert doc.count("/library/book") == 0

    def test_descendant(self, doc):
        assert doc.count("//title") == 7
        assert doc.count("//chapter//title") == 3
        assert doc.count("//book//title") == 6

    def test_wildcard(self, doc):
        assert doc.count("/library/*") == 2
        assert doc.count("/library/shelf/*") == 4
        assert doc.count("//shelf//*") == 19

    def test_text_nodes(self, doc):
        assert doc.count("//title/text()") == 7
        assert doc.count("//note/text()") == 2
        assert doc.count("/descendant::text()") == 12

    def test_attribute_axis(self, doc):
        assert doc.count("//shelf/attribute::id") == 2
        assert doc.count("//book/@year") == 3
        assert doc.count("//shelf/@floor") == 1
        assert doc.count("/descendant::*/attribute::*") == 6

    def test_following_sibling(self, doc):
        assert doc.count("//book/following-sibling::book") == 1
        assert doc.count("//book/following-sibling::magazine") == 1
        assert doc.count("//chapter/following-sibling::chapter") == 1

    def test_node_test(self, doc):
        assert doc.count("/library/shelf/node()") == 4


class TestPredicates:
    def test_existence_filters(self, doc):
        assert doc.count("//book[chapter]") == 2
        assert doc.count("//book[chapter/note]") == 2
        assert doc.count("//book[.//note]") == 2
        assert doc.count("//shelf[magazine]") == 1

    def test_boolean_combinations(self, doc):
        assert doc.count("//book[chapter and author]") == 2
        assert doc.count("//book[chapter or magazine]") == 2
        assert doc.count("//book[not(chapter)]") == 1
        assert doc.count("//shelf[book and not(magazine)]") == 1

    def test_attribute_filters(self, doc):
        assert doc.count("//book[@year]") == 3
        assert doc.count('//book[@year = "2005"]') == 1
        assert doc.count("//shelf[@floor]/book") == 2

    def test_text_predicates(self, doc):
        assert doc.count('//title[contains(., "Tree")]') == 2
        assert doc.count('//book[contains(.//title, "Wavelet")]') == 1
        assert doc.count('//author[starts-with(., "N")]') == 2
        assert doc.count('//title[ends-with(., "Indexes")]') == 1
        assert doc.count('//note[. = "fast"]') == 1
        assert doc.count('//book[.//note[. = "fast"]]/author') == 1

    def test_mixed_content_string_value(self, doc):
        mixed = Document.from_string("<a>01<b>23</b>45</a>")
        assert mixed.count('/a[contains(., "1234")]') == 1
        assert mixed.count('/a[contains(., "135")]') == 0

    def test_predicate_on_intermediate_step(self, doc):
        assert doc.count("/library/shelf[@id]/book/title") == 3
        assert doc.count('/library/shelf[@id = "s2"]/book/title') == 1

    def test_nested_filters(self, doc):
        assert doc.count("//shelf[book[chapter[note]]]") == 2
        assert doc.count("//shelf[book[not(chapter)]]") == 1


class TestResultIdentity:
    def test_nodes_are_tree_handles(self, doc):
        nodes = doc.query("//book")
        assert len(nodes) == 3
        for node in nodes:
            assert doc.tree.tag_name_of(node) == "book"

    def test_document_order(self, doc):
        nodes = doc.query("//title")
        assert nodes == sorted(nodes)

    def test_serialize_results(self, doc):
        assert doc.serialize("//note") == ["<note>succinct</note>", "<note>fast</note>"]

    def test_count_equals_materialisation(self, doc):
        for query in ("//title", "//book[chapter]", "//shelf//*", "//book/@year"):
            assert doc.count(query) == len(doc.query(query))

    def test_evaluate_result_object(self, doc):
        result = doc.evaluate("//book[chapter]")
        assert result.count == 2
        assert result.plan is not None
        assert result.statistics.visited_nodes > 0
        assert result.elapsed_seconds >= 0
        assert list(result) == result.nodes


class TestEmptyAndEdgeCases:
    def test_no_matches(self, doc):
        assert doc.count("//nonexistent") == 0
        assert doc.query("//book[xyz]") == []
        assert doc.serialize("//nonexistent") == []

    def test_root_only_queries(self, doc):
        assert doc.count("/library") == 1
        assert doc.count("/*") == 1

    def test_empty_elements(self):
        empty = Document.from_string("<a><b/><b/></a>")
        assert empty.count("//b") == 2
        assert empty.count("//b[c]") == 0
        assert empty.count('//b[contains(., "x")]') == 0
        assert empty.count('//a[contains(., "")]') == 1

    def test_deep_document_no_recursion_error(self):
        depth = 4000
        xml = "".join(f"<n{'>' }" for _ in range(depth)) + "x" + "".join("</n>" for _ in range(depth))
        deep = Document.from_string(xml)
        assert deep.count("//n") == depth
        assert deep.count("//n[not(n)]") == 1

    def test_wide_document(self):
        wide = Document.from_string("<a>" + "<b/>" * 3000 + "</a>")
        assert wide.count("//b") == 3000
        assert wide.count("/a/b") == 3000


class TestOptionsBehaviour:
    def test_counting_option_direct(self, doc):
        options = EvaluationOptions(counting=True)
        assert doc.count("//title", options) == 7

    def test_explain_output(self, doc):
        text = doc.explain('//book[contains(.//title, "Tree")]')
        assert "strategy" in text and "q0" in text
