"""Tests for the suffix array, the BWT of collections and the FM-index."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.bwt import bwt_of_collection
from repro.text.fm_index import FMIndex
from repro.text.suffix_array import build_suffix_array, suffix_array_of_bytes

TEXT_ALPHABET = st.text(alphabet="abcd", max_size=30)


def naive_suffix_array(data: list[int]) -> list[int]:
    return sorted(range(len(data)), key=lambda i: data[i:])


class TestSuffixArray:
    def test_empty_and_single(self):
        assert build_suffix_array(np.array([], dtype=np.int64)).tolist() == []
        assert build_suffix_array(np.array([5], dtype=np.int64)).tolist() == [0]

    def test_known_example(self):
        # banana with distinct ranks: suffixes sorted lexicographically.
        data = [ord(c) for c in "banana"]
        assert build_suffix_array(np.array(data)).tolist() == naive_suffix_array(data)

    def test_bytes_helper(self):
        text = b"mississippi"
        assert suffix_array_of_bytes(text).tolist() == naive_suffix_array(list(text))

    @given(st.lists(st.integers(min_value=1, max_value=5), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_sort(self, data):
        got = build_suffix_array(np.array(data, dtype=np.int64)).tolist()
        # Prefix doubling pads short suffixes with -1 (smaller than any rank),
        # matching the shorter-suffix-first convention of the naive model.
        assert got == naive_suffix_array(data)


class TestCollectionBWT:
    def test_terminator_rows_in_text_order(self):
        texts = [b"pen", b"blue", b"40", b"rubber"]
        transform = bwt_of_collection(texts)
        # The suffix of rank i starts with the terminator of text i.
        for i in range(len(texts)):
            position = int(transform.suffix_array[i])
            assert transform.doc_of_position[position] == i
            end = int(transform.text_starts[i]) + len(texts[i])
            assert position == end

    def test_rejects_empty_collection_and_nul(self):
        with pytest.raises(ValueError):
            bwt_of_collection([])
        with pytest.raises(ValueError):
            bwt_of_collection([b"a\x00b"])

    def test_doc_row_map_points_to_text_starts(self):
        texts = [b"aa", b"ab", b"ba"]
        transform = bwt_of_collection(texts)
        assert sorted(transform.doc_row_map.tolist()) == [0, 1, 2]


class TestFMIndex:
    @pytest.fixture(scope="class")
    def paper_texts(self):
        return [b"pen", b"Soon discontinued", b"blue", b"40", b"rubber", b"30"]

    @pytest.fixture(scope="class")
    def fm(self, paper_texts):
        return FMIndex(paper_texts, sample_rate=4)

    def test_extraction_roundtrip(self, fm, paper_texts):
        assert fm.extract_all() == paper_texts

    def test_count(self, fm, paper_texts):
        joined = b"\x00".join(paper_texts)
        for pattern in (b"n", b"ue", b"disco", b"zzz", b"0"):
            assert fm.count(pattern) == joined.count(pattern)

    def test_count_empty_pattern(self, fm):
        assert fm.count(b"") == len(fm)

    def test_locate_positions_match_occurrences(self, paper_texts):
        fm = FMIndex(paper_texts, sample_rate=2)
        positions = fm.locate(b"u")
        docs = sorted(fm.position_to_doc(int(p)) for p in positions)
        expected = []
        for doc, text in enumerate(paper_texts):
            for offset, byte in enumerate(text):
                if byte == ord("u"):
                    expected.append((doc, offset))
        assert docs == sorted(expected)

    def test_dollar_docs_in_range_finds_prefixed_texts(self, fm):
        sp, ep = fm.backward_search(b"b")
        assert set(fm.dollar_docs_in_range(sp, ep).tolist()) == {2}  # "blue"

    def test_lf_raises_on_terminator_rows(self, fm):
        dollar_row = int(fm._dollar_rows[0])  # noqa: SLF001 - white-box check
        with pytest.raises(ValueError):
            fm.lf(dollar_row)

    def test_sample_rate_validation(self, paper_texts):
        with pytest.raises(ValueError):
            FMIndex(paper_texts, sample_rate=0)

    def test_text_lengths(self, fm, paper_texts):
        for doc, text in enumerate(paper_texts):
            assert fm.text_length(doc) == len(text)

    @given(st.lists(TEXT_ALPHABET, min_size=1, max_size=8), st.text(alphabet="abcd", min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_count_matches_naive(self, texts, pattern):
        encoded = [t.encode() for t in texts]
        fm = FMIndex(encoded, sample_rate=3)
        needle = pattern.encode()
        # Count *overlapping* occurrences (what the FM-index reports); note that
        # occurrences cannot span texts because the terminator byte intervenes.
        expected = sum(
            1
            for text in encoded
            for start in range(len(text) - len(needle) + 1)
            if text[start : start + len(needle)] == needle
        )
        assert fm.count(needle) == expected

    @given(st.lists(TEXT_ALPHABET, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_extraction_property(self, texts):
        encoded = [t.encode() for t in texts]
        fm = FMIndex(encoded, sample_rate=5)
        assert fm.extract_all() == encoded

    def test_different_sample_rates_agree(self):
        rng = random.Random(3)
        texts = [bytes(rng.choice(b"abcde") for _ in range(rng.randint(1, 40))) for _ in range(20)]
        fast = FMIndex(texts, sample_rate=2)
        slow = FMIndex(texts, sample_rate=64)
        for pattern in (b"a", b"ab", b"cde", b"ee"):
            assert fast.count(pattern) == slow.count(pattern)
            assert sorted(fast.locate(pattern).tolist()) == sorted(slow.locate(pattern).tolist())
