"""Property tests: every batch (``*_many``) kernel equals a scalar loop.

The vectorised kernels added for the batch hot path must agree with their
scalar reference methods *exactly*, on randomized inputs including the nasty
corners: empty arrays, positions just outside the valid range (where the
scalar semantics clamp), all-zeros and all-ones bitmaps, single-symbol and
skewed-alphabet sequences, and degenerate (chain / flat) trees.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.bits.bitvector import BitVector
from repro.bits.intarray import PackedIntArray
from repro.bits.sparse import SparseBitVector
from repro.core.document import Document
from repro.core.options import EvaluationOptions
from repro.sequence.runlength import RunLengthSequence
from repro.sequence.wavelet_tree import WaveletTree
from repro.text.fm_index import FMIndex

RNG = np.random.default_rng(20260726)

#: Bit densities covering the all-zeros / all-ones extremes explicitly.
DENSITIES = [0.0, 0.03, 0.5, 0.97, 1.0]
#: Lengths covering the empty vector and word-boundary-straddling sizes.
LENGTHS = [0, 1, 63, 64, 65, 129, 1017]


def random_bits(length: int, density: float) -> np.ndarray:
    return RNG.random(length) < density


def boundary_positions(length: int) -> np.ndarray:
    """Query positions hugging (and slightly crossing) the valid range."""
    probes = [-3, -1, 0, 1, length - 1, length, length + 1, length + 5]
    drawn = RNG.integers(-2, length + 3, size=64) if length else np.zeros(0, dtype=np.int64)
    return np.concatenate((np.array(probes, dtype=np.int64), drawn))


# ---------------------------------------------------------------------------
# bits layer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("density", DENSITIES)
def test_bitvector_batch_equals_scalar(length, density):
    bits = random_bits(length, density)
    bv = BitVector(bits)
    pos = boundary_positions(length)
    assert np.array_equal(bv.rank1_many(pos), [bv.rank1(int(i)) for i in pos])
    assert np.array_equal(bv.rank0_many(pos), [bv.rank0(int(i)) for i in pos])
    if length:
        valid = RNG.integers(0, length, size=48)
        assert np.array_equal(bv.get_many(valid), [bv[int(i)] for i in valid])
    if bv.count_ones:
        ranks = np.unique(RNG.integers(1, bv.count_ones + 1, size=48))
        ranks = np.concatenate((ranks, [1, bv.count_ones]))
        assert np.array_equal(bv.select1_many(ranks), [bv.select1(int(j)) for j in ranks])
    if bv.count_zeros:
        ranks = np.unique(RNG.integers(1, bv.count_zeros + 1, size=48))
        ranks = np.concatenate((ranks, [1, bv.count_zeros]))
        assert np.array_equal(bv.select0_many(ranks), [bv.select0(int(j)) for j in ranks])


def test_bitvector_batch_empty_inputs():
    bv = BitVector([1, 0, 1])
    for kernel in (bv.rank1_many, bv.rank0_many, bv.select1_many, bv.select0_many, bv.get_many):
        out = kernel(np.zeros(0, dtype=np.int64))
        assert out.size == 0 and out.dtype == np.int64


def test_bitvector_batch_select_out_of_range():
    bv = BitVector([1, 0, 1])
    with pytest.raises(ValueError):
        bv.select1_many([1, 3])
    with pytest.raises(ValueError):
        bv.select0_many([0])
    with pytest.raises(IndexError):
        bv.get_many([3])


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("density", [0.0, 0.05, 0.9, 1.0])
def test_sparse_bitvector_batch_equals_scalar(length, density):
    bits = random_bits(length, density)
    sbv = SparseBitVector(np.flatnonzero(bits), length)
    pos = boundary_positions(length)
    assert np.array_equal(sbv.rank1_many(pos), [sbv.rank1(int(i)) for i in pos])
    assert np.array_equal(sbv.rank0_many(pos), [sbv.rank0(int(i)) for i in pos])
    assert np.array_equal(sbv.next_one_many(pos), [sbv.next_one(int(i)) for i in pos])
    if length:
        valid = RNG.integers(0, length, size=48)
        assert np.array_equal(sbv.get_many(valid), [sbv[int(i)] for i in valid])
    if sbv.count_ones:
        ranks = RNG.integers(1, sbv.count_ones + 1, size=32)
        assert np.array_equal(sbv.select1_many(ranks), [sbv.select1(int(j)) for j in ranks])
    for kernel in (sbv.rank1_many, sbv.select1_many, sbv.next_one_many, sbv.get_many):
        assert kernel(np.zeros(0, dtype=np.int64)).size == 0


def test_sparse_bitvector_batch_out_of_range():
    sbv = SparseBitVector([1, 4], 6)
    with pytest.raises(ValueError):
        sbv.select1_many([0])
    with pytest.raises(IndexError):
        sbv.get_many([6])


@pytest.mark.parametrize("width", [1, 5, 7, 13, 24, 33, 48, 63, None])
def test_packed_int_array_get_many(width):
    values = RNG.integers(0, 2 ** min(width or 40, 40), size=301)
    packed = PackedIntArray(values, width=width)
    idx = RNG.integers(-len(packed), len(packed), size=200)
    assert np.array_equal(packed.get_many(idx), [packed[int(i)] for i in idx])
    assert packed.get_many(np.zeros(0, dtype=np.int64)).size == 0
    with pytest.raises(IndexError):
        packed.get_many([len(packed)])


def test_packed_int_array_get_many_rejects_full_width():
    packed = PackedIntArray([1, 2, 3], width=64)
    with pytest.raises(ValueError):
        packed.get_many([0])


# ---------------------------------------------------------------------------
# sequence layer
# ---------------------------------------------------------------------------


def sequences():
    yield []
    yield [7]
    yield [3] * 80  # single symbol, all runs
    yield RNG.integers(0, 5, size=257).tolist()  # small alphabet
    yield RNG.integers(0, 200, size=300).tolist()  # wide alphabet
    yield np.repeat(RNG.integers(0, 4, size=40), RNG.integers(1, 12, size=40)).tolist()  # runs


@pytest.mark.parametrize("factory", [WaveletTree, RunLengthSequence])
def test_sequence_batch_equals_scalar(factory):
    for seq in sequences():
        structure = factory(seq)
        length = len(seq)
        pos = boundary_positions(length)
        probe_symbols = sorted(set(seq))[:6] + [9999]
        for symbol in probe_symbols:
            got = structure.rank_many(symbol, pos)
            assert np.array_equal(got, [structure.rank(symbol, int(i)) for i in pos]), (factory, symbol)
            total = structure.count(symbol)
            if total:
                ranks = np.concatenate((RNG.integers(1, total + 1, size=24), [1, total]))
                assert np.array_equal(
                    structure.select_many(symbol, ranks), [structure.select(symbol, int(j)) for j in ranks]
                )
            else:
                with pytest.raises(ValueError):
                    structure.select_many(symbol, [1])
        if length:
            valid = RNG.integers(0, length, size=64)
            assert np.array_equal(structure.access_many(valid), [structure.access(int(i)) for i in valid])
            with pytest.raises(IndexError):
                structure.access_many([length])
        for kernel in (structure.access_many, lambda a: structure.rank_many(0, a)):
            assert kernel(np.zeros(0, dtype=np.int64)).size == 0


# ---------------------------------------------------------------------------
# FM-index
# ---------------------------------------------------------------------------

TEXTS = [b"hello world", b"", b"abracadabra", b"world of worlds", b"aaaa", b"hello", b"xyz" * 30]


@pytest.mark.parametrize("factory", [WaveletTree, RunLengthSequence])
@pytest.mark.parametrize("sample_rate", [4, 64])
def test_fm_index_batch_equals_scalar(factory, sample_rate):
    fm = FMIndex(TEXTS, sample_rate=sample_rate, sequence_factory=factory)
    fm._BATCH_LOCATE_CUTOFF = 0  # force the batched LF walk even on small row sets
    rows = np.arange(len(fm))
    assert np.array_equal(fm.locate_rows_many(rows), [fm.locate_row(int(r)) for r in rows])
    assert fm.locate_rows_many(np.zeros(0, dtype=np.int64)).size == 0
    symbols, ranks = fm._sequence.access_rank_many(rows)
    assert np.array_equal(symbols, [fm._sequence.access(int(r)) for r in rows])
    assert np.array_equal(ranks, [fm._sequence.rank(int(s), int(r)) for s, r in zip(symbols, rows)])
    sps = RNG.integers(0, len(fm), size=40)
    eps = np.minimum(sps + RNG.integers(0, 12, size=40), len(fm))
    for symbol in (ord("a"), ord("o"), ord("z"), ord("q")):
        batch_sp, batch_ep = fm.backward_step_many(symbol, sps, eps)
        scalar = [fm.backward_step(symbol, int(s), int(e)) for s, e in zip(sps, eps)]
        assert np.array_equal(batch_sp, [s for s, _ in scalar])
        assert np.array_equal(batch_ep, [e for _, e in scalar])
    positions = RNG.integers(0, len(fm), size=80)
    assert np.array_equal(fm.positions_to_docs(positions), [fm.position_to_doc(int(p))[0] for p in positions])


# ---------------------------------------------------------------------------
# tree layer
# ---------------------------------------------------------------------------


def tree_documents():
    """Random + degenerate documents (deep chain, flat fan-out, attribute-heavy)."""
    from repro.fuzz.xmlgen import XmlGenConfig, generate_xml

    rng = random.Random(99)
    for _ in range(6):
        yield generate_xml(rng, XmlGenConfig(max_depth=6))
    yield "<r>" + "".join(f"<a id='{i}'>t{i}</a>" for i in range(40)) + "</r>"  # flat
    deep = "<d0>" + "".join(f"<d{i}>" for i in range(1, 30))
    yield deep + "x" + "".join(f"</d{i}>" for i in range(29, 0, -1)) + "</d0>"  # chain


@pytest.mark.parametrize("xml", list(tree_documents()))
def test_tree_batch_navigation_equals_scalar(xml):
    document = Document.from_string(xml)
    tree = document.tree
    opens = tree.node_at_preorder_many(np.arange(1, tree.num_nodes + 1))
    assert np.array_equal(opens, [tree.node_at_preorder(p) for p in range(1, tree.num_nodes + 1)])
    assert np.array_equal(tree.close_many(opens), [tree.close(int(x)) for x in opens])
    assert np.array_equal(tree.parent_many(opens), [tree.parent(int(x)) for x in opens])
    assert np.array_equal(tree.tag_many(opens), [tree.tag(int(x)) for x in opens])
    assert np.array_equal(tree.preorder_many(opens), [tree.preorder(int(x)) for x in opens])
    assert np.array_equal(tree.subtree_size_many(opens), [tree.subtree_size(int(x)) for x in opens])
    assert np.array_equal(tree.depth_many(opens), [tree.depth(int(x)) for x in opens])
    assert np.array_equal(tree.is_text_leaf_many(opens), [tree.is_text_leaf(int(x)) for x in opens])
    starts, ends = tree.subtree_interval_many(opens)
    assert np.array_equal(starts, opens) and np.array_equal(ends, tree.close_many(opens))
    firsts, lasts = tree.text_ids_many(opens)
    scalar_ranges = [tree.text_ids(int(x)) for x in opens]
    assert np.array_equal(firsts, [r[0] for r in scalar_ranges])
    assert np.array_equal(lasts, [r[1] for r in scalar_ranges])
    if tree.num_texts:
        text_ids = np.arange(tree.num_texts)
        assert np.array_equal(tree.node_of_text_many(text_ids), [tree.node_of_text(int(i)) for i in text_ids])
    all_tags = np.arange(tree.num_tags)
    for x in opens[:: max(1, opens.size // 12)]:
        x = int(x)
        assert np.array_equal(tree.tagged_desc_many(x, all_tags), [tree.tagged_desc(x, int(t)) for t in all_tags])
        assert np.array_equal(tree.tagged_foll_many(x, all_tags), [tree.tagged_foll(x, int(t)) for t in all_tags])
    for of_tag in range(-1, tree.num_tags + 1):
        assert np.array_equal(
            document.tag_tables.occurs_as_descendant_many(of_tag, all_tags),
            [document.tag_tables.occurs_as_descendant(of_tag, int(t)) for t in all_tags],
        )
    # Batch kernels of the aligned tag sequence.
    tags_structure = tree.tag_sequence
    every_position = np.arange(len(tags_structure))
    assert np.array_equal(tags_structure.tag_at_many(every_position), [tags_structure.tag_at(int(i)) for i in every_position])
    assert np.array_equal(
        tags_structure.closing_tag_at_many(every_position),
        [tags_structure.closing_tag_at(int(i)) for i in every_position],
    )
    for tag in range(tree.num_tags):
        pos = boundary_positions(len(tags_structure))
        assert np.array_equal(tags_structure.rank_many(tag, pos), [tags_structure.rank(tag, int(i)) for i in pos])
        assert np.array_equal(
            tags_structure.next_occurrence_many(tag, pos),
            [tags_structure.next_occurrence(tag, int(i)) for i in pos],
        )
        total = tags_structure.count(tag)
        if total:
            ranks = np.arange(1, total + 1)
            assert np.array_equal(tags_structure.select_many(tag, ranks), [tags_structure.select(tag, int(j)) for j in ranks])


def test_balanced_parens_batch_equals_scalar():
    document = Document.from_string("<a><b><c>x</c></b><b/><d>y</d></a>")
    par = document.tree.parentheses
    pos = np.arange(len(par))
    assert np.array_equal(par.is_open_many(pos), [par.is_open(int(i)) for i in pos])
    assert np.array_equal(par.rank_open_many(pos), [par.rank_open(int(i)) for i in pos])
    assert np.array_equal(par.excess_many(pos), [par.excess(int(i)) for i in pos])
    ranks = np.arange(1, par.rank_open(len(par)) + 1)
    assert np.array_equal(par.select_open_many(ranks), [par.select_open(int(j)) for j in ranks])


# ---------------------------------------------------------------------------
# engine: batch path vs scalar path
# ---------------------------------------------------------------------------

ENGINE_XML = (
    "<site><people>"
    + "".join(
        f"<person id='p{i}'><name>name{i % 7}</name><city>city{i % 3}</city></person>" for i in range(25)
    )
    + "</people><items>"
    + "".join(f"<item><name>widget{i % 5}</name></item>" for i in range(20))
    + "</items></site>"
)

ENGINE_QUERIES = [
    "//person[city[contains(., 'city1')]]/name",
    "//name[contains(., 'widget2')]",
    "//person[name[starts-with(., 'name3')]]",
    "//items//name",
    "//person[city = 'city0']",
]


@pytest.mark.parametrize("query", ENGINE_QUERIES)
def test_engine_batch_path_equals_scalar_path(query):
    document = Document.from_string(ENGINE_XML)
    batch = document.query(query, EvaluationOptions(batch_kernels=True))
    scalar = document.query(query, EvaluationOptions(batch_kernels=False))
    assert batch == scalar
    assert document.count(query, EvaluationOptions(batch_kernels=True)) == len(scalar)
