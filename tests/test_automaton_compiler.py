"""Tests for formulas, automata and the XPath-to-automaton compiler."""

from __future__ import annotations

import pytest

from repro.core.errors import UnsupportedQueryError
from repro.xpath.automaton import Automaton, LabelGuard
from repro.xpath.compiler import QueryCompiler, TagResolver, count_safe
from repro.xpath.formula import BuiltinPredicate, FormulaFactory
from repro.xpath.parser import parse_xpath

TAGS = ["&", "#", "@", "%", "site", "listitem", "keyword", "emph", "person", "id"]


def compile_query(query: str):
    return QueryCompiler(TAGS).compile(parse_xpath(query))


class TestFormulaFactory:
    def test_hash_consing(self):
        factory = FormulaFactory()
        a = factory.and_(factory.down(1, 3), factory.down(2, 3))
        b = factory.and_(factory.down(1, 3), factory.down(2, 3))
        assert a is b

    def test_constant_folding(self):
        factory = FormulaFactory()
        down = factory.down(1, 0)
        assert factory.and_(factory.true(), down) is down
        assert factory.and_(down, factory.false()).kind == "false"
        assert factory.or_(factory.false(), down) is down
        assert factory.or_(down, factory.true()).kind == "true"
        assert factory.not_(factory.true()).kind == "false"
        assert factory.opt(factory.false()).kind == "true"
        assert factory.orelse(factory.false(), down) is down

    def test_down_state_tracking(self):
        factory = FormulaFactory()
        formula = factory.and_(factory.down(1, 1), factory.and_(factory.down(2, 2), factory.mark()))
        assert formula.down1_states == frozenset({1})
        assert formula.down2_states == frozenset({2})
        assert formula.has_mark

    def test_describe(self):
        factory = FormulaFactory()
        predicate = BuiltinPredicate(0, "contains", "x")
        formula = factory.or_(factory.predicate(predicate), factory.not_(factory.down(1, 2)))
        text = formula.describe()
        assert "contains" in text and "~" in text and "v1 q2" in text


class TestLabelGuard:
    def test_finite(self):
        guard = LabelGuard.of((1, 2))
        assert guard.matches(1) and not guard.matches(3)

    def test_cofinite(self):
        guard = LabelGuard.excluding((1,))
        assert guard.matches(0) and guard.matches(99) and not guard.matches(1)

    def test_describe_with_names(self):
        assert "site" in LabelGuard.of((4,)).describe(TAGS)
        assert "L \\" in LabelGuard.excluding((0,)).describe(TAGS)


class TestAutomatonStructure:
    def test_states_and_classification(self):
        compiled = compile_query("//listitem//keyword")
        automaton = compiled.automaton
        assert automaton.num_states == 3  # two spine states + root state
        assert len(automaton.top_states) == 1
        assert len(automaton.marking_states) == 1
        # The root state is not a bottom state; the spine states are.
        assert automaton.top_states.isdisjoint(automaton.bottom_states)
        assert compiled.spine_states[-1] in automaton.marking_states

    def test_transitions_for_dispatch(self):
        compiled = compile_query("//keyword")
        automaton = compiled.automaton
        keyword = compiled.resolver.resolve("keyword")
        state = compiled.spine_states[0]
        matching = automaton.transitions_for(state, keyword)
        assert len(matching) == 1
        assert matching[0].formula.has_mark
        other = automaton.transitions_for(state, compiled.resolver.resolve("emph"))
        assert len(other) == 1 and not other[0].formula.has_mark

    def test_missing_tag_gets_fresh_identifier(self):
        resolver = TagResolver(TAGS)
        fresh = resolver.resolve("doesnotexist")
        assert fresh >= len(TAGS)
        assert resolver.resolve("doesnotexist") == fresh
        assert resolver.resolve("other") != fresh

    def test_mark_carrying_states(self):
        compiled = compile_query("//listitem[.//emph]//keyword")
        automaton = compiled.automaton
        # Spine states carry marks, the filter state for .//emph does not.
        carrying = automaton.mark_carrying_states
        assert set(compiled.spine_states) <= carrying
        assert len(carrying) < automaton.num_states

    def test_predicate_registration_deduplicates(self):
        factory_automaton = Automaton(factory=FormulaFactory())
        first = factory_automaton.register_predicate("contains", "x")
        second = factory_automaton.register_predicate("contains", "x")
        third = factory_automaton.register_predicate("contains", "y")
        assert first is second and third is not first

    def test_describe_contains_transitions(self):
        compiled = compile_query("//keyword")
        text = compiled.describe(TAGS)
        assert "keyword" in text and "mark" in text

    def test_text_predicates_registered(self):
        compiled = compile_query('//keyword[contains(., "red") or starts-with(., "b")]')
        kinds = sorted(p.kind for p in compiled.predicates)
        assert kinds == ["contains", "starts-with"]

    def test_attribute_axis_produces_helper_state(self):
        compiled = compile_query("/descendant::person/attribute::id")
        assert compiled.automaton.num_states == 4  # person + @-scan + attribute + root


class TestCompilerErrors:
    def test_relative_query_rejected(self):
        compiler = QueryCompiler(TAGS)
        with pytest.raises(UnsupportedQueryError):
            compiler.compile(parse_xpath("//a").__class__(steps=parse_xpath("//a").steps, absolute=False))

    def test_self_name_test_in_filter_compiles(self):
        # Leading self tests in filters are resolved by splitting the
        # enclosing step's guard into label classes (one per mentioned name).
        compiled = compile_query("//keyword[self::keyword or self::emph]")
        assert compiled.automaton.num_states >= 2

    def test_self_test_folded_into_previous_step(self):
        # 'site/self::site' folds to a single 'site' step at parse time.
        folded = parse_xpath("/site/self::site")
        plain = parse_xpath("/site")
        assert folded == plain

    def test_contradictory_self_test_selects_nothing(self):
        # 'site/self::person' can never match; the guard is empty but the
        # query still compiles and runs.
        compiled = compile_query("/site/self::person")
        assert compiled.automaton.num_states >= 2


class TestCountSafety:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("//a", True),
            ("//a//b", True),
            ("//a//b//c", True),
            ("//a/b", True),
            ("/a/b/c", True),
            ("//a/b//c", False),
            ("//a/b/c", False),
            ("//*//*", True),
            ("//a[x]/b", True),
        ],
    )
    def test_count_safe_shapes(self, query, expected):
        assert count_safe(parse_xpath(query)) is expected
