"""End-to-end tests of the HTTP server and client over a real socket.

Covers the ISSUE 3 acceptance bar: batch responses value-identical to the
in-process ``QueryService.run_many``, eight concurrent clients served without
event-loop starvation (healthz stays fast), the status mapping of every domain
exception, oversized-request rejection and ``/metrics`` format sanity.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import (
    CorruptedFileError,
    DocumentNotFoundError,
    DocumentStore,
    IndexOptions,
    QueryService,
    UnsupportedQueryError,
)
from repro.client import ReproClient
from repro.server import ApiError, ReproServer
from repro.xpath.parser import XPathSyntaxError

QUERIES = ["//item", "//item/name", '//item[contains(., "gold")]', "//b"]


def _xml(i: int) -> str:
    items = "".join(
        f"<item><name>thing-{i}-{j}</name>{'gold' if (i + j) % 3 == 0 else 'plain'}</item>"
        for j in range(i % 4 + 1)
    )
    return f"<site>{items}<b>tail-{i}</b></site>"


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("http-store")
    store = DocumentStore(root, num_shards=8, cache_size=4)
    for i in range(12):
        store.add_xml(f"doc-{i:02d}", _xml(i))
    return root


@pytest.fixture(scope="module")
def server(corpus):
    service = QueryService(DocumentStore(corpus, cache_size=4), max_workers=2)
    with ReproServer(service, max_body_bytes=256 * 1024) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ReproClient(*server.address) as c:
        yield c


# -- parity with the in-process service ------------------------------------------------


def test_batch_matches_in_process_run_many(server, client, corpus):
    reference = QueryService(DocumentStore(corpus, cache_size=4), max_workers=1)
    expected = reference.run_many(QUERIES, want_nodes=True)
    over_http = client.run_many(QUERIES, want_nodes=True)
    assert [r.query for r in over_http] == [r.query for r in expected]
    for remote, local in zip(over_http, expected):
        assert remote.counts == local.counts
        assert remote.total == local.total
        assert remote.nodes == local.nodes
        assert remote.failures == local.failures
        assert sorted(remote.counts) == sorted(local.counts)


def test_single_query_and_doc_ids_subset(client):
    subset = ["doc-03", "doc-07"]
    result = client.run("//item", doc_ids=subset)
    assert sorted(result.counts) == subset
    assert result.total == sum(result.counts.values())
    assert result.shard_timings  # per-shard breakdown travels over the wire


def test_count_helpers(client, corpus):
    reference = QueryService(DocumentStore(corpus, cache_size=4), max_workers=1)
    assert client.total_count("//item") == reference.total_count("//item")
    assert client.count_all("//b") == reference.count_all("//b")


# -- concurrency: 8 clients, healthz stays responsive ----------------------------------


def test_concurrent_clients_and_healthz_latency(server, corpus):
    reference = QueryService(DocumentStore(corpus, cache_size=4), max_workers=1)
    expected = {r.query: r.counts for r in reference.run_many(QUERIES)}
    errors: list[BaseException] = []
    mismatches: list[str] = []

    def hammer():
        try:
            with ReproClient(*server.address) as c:
                for _ in range(3):
                    for result in c.run_many(QUERIES):
                        if result.counts != expected[result.query]:
                            mismatches.append(result.query)
                        if result.failures:
                            mismatches.append(f"failures for {result.query}")
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    # Probe liveness while the 8 clients are hammering: the event loop must
    # never be starved by index work (it runs on the executor threads).
    probe = ReproClient(*server.address)
    latencies = []
    while any(t.is_alive() for t in threads):
        started = time.perf_counter()
        assert probe.healthz()["status"] == "ok"
        latencies.append(time.perf_counter() - started)
        time.sleep(0.01)
    for thread in threads:
        thread.join()
    probe.close()
    assert not errors, errors
    assert not mismatches, mismatches
    assert latencies, "no healthz probe overlapped the load"
    latencies.sort()
    median = latencies[len(latencies) // 2]
    assert median < 0.1, f"median healthz latency {median:.3f}s"


# -- error mapping ---------------------------------------------------------------------


def test_syntax_error_maps_to_400(client):
    with pytest.raises(XPathSyntaxError):
        client.run("item[")


def test_self_axis_query_served_over_the_wire(client):
    # '/self::a' used to map to 400 (UnsupportedQueryError); the self axis is
    # supported now and the query answers with zero matches everywhere.
    result = client.run("/self::a")
    assert result.total == 0 and not result.failures


def test_unsupported_query_maps_to_400(server, client, monkeypatch):
    # Every parseable query compiles since the self-axis work, so the
    # UnsupportedQueryError->400 mapping is driven by injecting the error at
    # the server's eager-bind validation and asserting the typed re-raise
    # travels the wire.
    sentinel = "//trigger-unsupported"
    real_get = server.service.plan_cache.get

    def fake_get(query, index_options=None):
        if query == sentinel:
            raise UnsupportedQueryError("injected: outside the fragment")
        return real_get(query, index_options)

    monkeypatch.setattr(server.service.plan_cache, "get", fake_get)
    with pytest.raises(UnsupportedQueryError, match="outside the fragment"):
        client.run(sentinel)


def test_unknown_document_maps_to_404(client):
    with pytest.raises(DocumentNotFoundError):
        client.get_document("no-such-doc")
    with pytest.raises(DocumentNotFoundError):
        client.delete_document("no-such-doc")


def test_corrupted_file_maps_to_500(server, client, corpus):
    store = server.service.store
    store.add_xml("corrupt-me", "<a><b>x</b></a>")
    path = corpus / f"shard-{store.shard_of('corrupt-me'):03d}" / "corrupt-me.sxsi"
    path.write_bytes(b"not an index at all")
    try:
        with pytest.raises(CorruptedFileError):
            client.document_stats("corrupt-me")
        # Batch queries keep answering: the bad file becomes a DocumentFailure.
        result = client.run("//b")
        assert any(f.doc_id == "corrupt-me" for f in result.failures)
        assert result.counts  # the healthy documents still answered
    finally:
        store.remove("corrupt-me")


def test_invalid_doc_id_maps_to_400(client):
    with pytest.raises(ApiError) as excinfo:
        client.get_document("..%2F..%2Fescape")
    assert excinfo.value.status == 400


def test_validation_errors(server, client):
    with pytest.raises(ApiError) as excinfo:
        client._json("POST", "/v1/query", {"not_query": 1})
    assert excinfo.value.status == 400
    with pytest.raises(ApiError) as excinfo:
        client._json("POST", "/v1/query/batch", {"queries": []})
    assert excinfo.value.status == 400
    with pytest.raises(ApiError) as excinfo:
        client._json("POST", "/v1/query", {"query": "//item", "options": {"bogus_knob": True}})
    assert excinfo.value.status == 400
    assert "bogus_knob" in str(excinfo.value)
    # Malformed JSON body.
    status, data = client._request("POST", "/v1/query", raw_body=b"{nope")
    assert status == 400
    envelope = json.loads(data)
    assert envelope["error"]["status"] == 400


def test_negative_content_length_gets_400(server):
    # A raw malformed request must get a structured 400, not a dropped socket.
    import socket as socket_module

    with socket_module.create_connection(server.address, timeout=5.0) as sock:
        sock.sendall(b"POST /v1/query HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        response = sock.recv(65536).decode("latin-1")
    assert response.startswith("HTTP/1.1 400 ")
    assert "invalid Content-Length" in response


def test_unknown_route_and_wrong_method(client):
    status, data = client._request("GET", "/v1/nope")
    assert status == 404
    status, data = client._request("GET", "/v1/query")
    assert status == 405
    assert "POST" in json.loads(data)["error"]["message"]


# -- limits ----------------------------------------------------------------------------


def test_oversized_request_rejected_with_413(server):
    big = "x" * (300 * 1024)  # above the fixture's 256 KiB cap
    connection = http.client.HTTPConnection(*server.address)
    try:
        connection.request(
            "PUT",
            "/v1/documents/too-big",
            body=json.dumps({"xml": big}),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 413
        assert payload["error"]["status"] == 413
    finally:
        connection.close()
    # The server refused before reading the body and stays healthy.
    with ReproClient(*server.address) as c:
        assert c.healthz()["status"] == "ok"


# -- ingest round-trip -----------------------------------------------------------------


def test_ingest_round_trip_with_options(client):
    xml = "<site><item><name>wire</name>gold</item></site>"
    created = client.put_document("wire-doc", xml, IndexOptions(sample_rate=16, word_index=True))
    assert created["doc_id"] == "wire-doc"
    try:
        info = client.get_document("wire-doc")
        assert info["options"]["sample_rate"] == 16
        assert info["options"]["word_index"] is True
        stats = client.document_stats("wire-doc")
        assert stats["components"]["word_index"]["bits"] > 0
        assert client.run("//item", doc_ids=["wire-doc"]).total == 1
        # PUT without overwrite on an existing id is a storage error (500 family).
        with pytest.raises(Exception) as excinfo:
            client.put_document("wire-doc", xml)
        assert "already exists" in str(excinfo.value)
        # Overwrite goes through and changes the content.
        client.put_document("wire-doc", "<site><item>solo</item></site>", overwrite=True)
        assert client.get_document("wire-doc")["num_nodes"] < info["num_nodes"]
    finally:
        client.delete_document("wire-doc")
    with pytest.raises(DocumentNotFoundError):
        client.get_document("wire-doc")


def test_raw_xml_put(server, client):
    status, data = client._request(
        "PUT", "/v1/documents/raw-doc?overwrite=true", raw_body=b"<a><b>raw</b></a>"
    )
    assert status == 201
    assert json.loads(data)["doc_id"] == "raw-doc"
    assert client.run("//b", doc_ids=["raw-doc"]).total == 1
    client.delete_document("raw-doc")


# -- stats and metrics -----------------------------------------------------------------


def test_stats_endpoint(client):
    stats = client.stats()
    assert stats["store"]["num_documents"] == 12
    assert "plan_cache" in stats["service"]
    assert "store_cache" in stats["service"]
    assert "residency" in stats["store"]["storage"]
    assert stats["process"]["page_size"] > 0


def test_metrics_format(client):
    client.run("//item")  # ensure at least one observed query request
    page = client.metrics_text()
    lines = page.splitlines()
    assert "# TYPE repro_http_requests_total counter" in lines
    assert "# TYPE repro_http_request_seconds histogram" in lines
    # The registry renderer emits label names sorted.
    assert any(
        line.startswith('repro_http_requests_total{method="POST",route="/v1/query",status="200"}')
        for line in lines
    )
    # Histogram invariants: +Inf bucket equals the count, sum present.
    inf = [line for line in lines if 'le="+Inf"' in line and 'route="/v1/query"' in line]
    count = [line for line in lines if line.startswith('repro_http_request_seconds_count{route="/v1/query"}')]
    assert inf and count
    assert inf[0].rsplit(" ", 1)[1] == count[0].rsplit(" ", 1)[1]
    assert any(line.startswith("repro_plan_cache_hit_ratio ") for line in lines)
    assert any(line.startswith("repro_store_cache_resident_documents ") for line in lines)
    # Document ids never appear as route labels.
    assert 'route="/v1/documents/{id}"' in page or "documents" not in page


def test_metrics_page_parses_strictly(client):
    client.run("//item")
    families = client.metrics()  # the strict parser raises on any format slip
    # One family from each instrumented layer rides on the shared registry.
    for family in (
        "repro_http_requests_total",
        "repro_engine_queries_total",
        "repro_store_cache_hits_total",
        "repro_storage_mapped_loads_total",
        "repro_service_sweep_seconds",
        "repro_process_open_fds",
    ):
        assert family in families, family
    assert families["repro_service_sweep_seconds"]["type"] == "histogram"
    # Exactly one header pair per family: the parser enforces it, but assert
    # the old duplicated-# TYPE rendering cannot come back silently.
    lines = client.metrics_text().splitlines()
    type_lines = [line for line in lines if line.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines))


def test_debug_workload_endpoint(server, client):
    from repro.obs.workload import fingerprint, get_workload

    get_workload().reset()
    client.run('//item[contains(., "gold")]', request_id="workload-req-1")
    client.run('//item[contains(., "silver")]', request_id="workload-req-2")
    client.run("//item/name")
    data = client.debug_workload()
    assert data["enabled"] is True
    assert data["total_queries"] == 3
    assert data["sweeps"]["count"] == 3
    shapes = {shape["shape"]: shape for shape in data["shapes"]}
    merged = shapes[fingerprint('//item[contains(., "gold")]')]
    assert merged["queries"] == 2
    assert merged["latency"]["count"] == 2
    assert merged["last_request_id"] == "workload-req-2"
    request_ids = {entry["request_id"] for entry in data["slow_queries"]}
    assert "workload-req-1" in request_ids
    # limit= caps both the shape list and the slow-query table.
    limited = client.debug_workload(limit=1)
    assert len(limited["shapes"]) == 1
    assert len(limited["slow_queries"]) == 1
    assert limited["num_shapes"] == 2


# -- lifecycle -------------------------------------------------------------------------


def test_graceful_shutdown_and_restartable_port(corpus):
    service = QueryService(DocumentStore(corpus, cache_size=2), max_workers=1)
    server = ReproServer(service)
    server.start()
    address = server.address
    with ReproClient(*address) as c:
        assert c.run("//item").total > 0
    server.stop()
    # The port is released and the socket refuses new connections.
    with pytest.raises(ApiError):
        ReproClient(*address, retries=0, timeout=2.0).healthz()
    # stop() is idempotent and the same instance can restart on a fresh port.
    server.stop()
    server.start()
    try:
        with ReproClient(*server.address) as c:
            assert c.healthz()["status"] == "ok"
    finally:
        server.stop()


def test_lazy_package_exports():
    import importlib
    import subprocess
    import sys

    import repro

    assert repro.ReproServer is ReproServer
    assert importlib.import_module("repro.client").ReproClient is ReproClient
    # A fresh interpreter importing repro must not pull the server/client stack.
    code = (
        "import sys, repro; "
        "assert 'repro.server' not in sys.modules and 'repro.client' not in sys.modules; "
        "repro.ReproClient; assert 'repro.client' in sys.modules"
    )
    subprocess.run([sys.executable, "-c", code], check=True)
