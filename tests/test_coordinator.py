"""Cluster-coordinator tests: ring, health hysteresis, and failure paths.

The cluster fixtures run real :class:`ReproServer` backends (sync facade,
loop in a daemon thread) behind a real :class:`CoordinatorServer` on
loopback, exactly like the e2e smoke but in-process -- so "kill a node"
is ``server.stop()`` and every wire behaviour (degraded batches, envelope
pass-through, hedging) is exercised over actual HTTP.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.client import CoordinatorClient, ReproClient
from repro.coordinator import CoordinatorServer, HashRing, HealthTracker
from repro.coordinator.backend import NodeError
from repro.coordinator.http import parse_node_spec
from repro.coordinator.merge import merge_batches, merge_results, node_failure
from repro.server import ReproServer
from repro.server.admission import AdmissionController
from repro.server.json_api import ApiError
from repro.service.query_service import QueryService
from repro.store.document_store import DocumentStore
from repro.xpath.parser import XPathSyntaxError

# ---------------------------------------------------------------------------
# ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_nodes_for_returns_distinct_nodes_primary_first(self):
        ring = HashRing(["a", "b", "c"])
        replicas = ring.nodes_for("doc-1", 3)
        assert sorted(replicas) == ["a", "b", "c"]
        assert ring.nodes_for("doc-1", 1) == replicas[:1]
        assert ring.nodes_for("doc-1", 2) == replicas[:2]

    def test_count_clamped_to_fleet_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.nodes_for("k", 10)) == 2

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            HashRing().nodes_for("k")

    def test_placement_is_stable_across_instances(self):
        keys = [f"doc-{i}" for i in range(100)]
        one = [HashRing(["a", "b", "c"]).nodes_for(k)[0] for k in keys]
        two = [HashRing(["c", "a", "b"]).nodes_for(k)[0] for k in keys]
        assert one == two  # insertion order and process identity do not matter

    def test_remove_only_moves_the_removed_nodes_keys(self):
        keys = [f"doc-{i}" for i in range(300)]
        ring = HashRing(["a", "b", "c"])
        before = {k: ring.nodes_for(k)[0] for k in keys}
        ring.remove("c")
        after = {k: ring.nodes_for(k)[0] for k in keys}
        for key in keys:
            if before[key] != "c":
                assert after[key] == before[key]
        assert any(before[k] == "c" for k in keys)  # the test actually covered moves

    def test_add_restores_the_original_placement(self):
        keys = [f"doc-{i}" for i in range(300)]
        ring = HashRing(["a", "b", "c"])
        before = {k: ring.nodes_for(k, 2) for k in keys}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.nodes_for(k, 2) for k in keys} == before

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        spread = ring.spread(f"doc-{i}" for i in range(600))
        assert all(count > 0 for count in spread.values())
        assert max(spread.values()) / min(spread.values()) < 3.0


# ---------------------------------------------------------------------------
# health hysteresis
# ---------------------------------------------------------------------------


class TestHealthTracker:
    def test_marks_down_only_after_consecutive_failures(self):
        tracker = HealthTracker(["n"], fail_after=3, rise_after=2)
        assert not tracker.record_failure("n")
        assert not tracker.record_failure("n")
        assert tracker.is_healthy("n")
        assert tracker.record_failure("n")  # the third one transitions
        assert not tracker.is_healthy("n")

    def test_marks_up_only_after_consecutive_successes(self):
        tracker = HealthTracker(["n"], fail_after=1, rise_after=2)
        tracker.record_failure("n", "boom")
        assert not tracker.record_success("n")
        assert not tracker.is_healthy("n")
        assert tracker.record_success("n")
        assert tracker.is_healthy("n")
        assert tracker.snapshot()["n"]["last_error"] is None

    def test_flapping_node_stays_put(self):
        """Alternating ok/fail never accumulates a streak -- no transition."""
        tracker = HealthTracker(["n"], fail_after=3, rise_after=2)
        for _ in range(10):
            tracker.record_failure("n")
            tracker.record_success("n")
        assert tracker.is_healthy("n")
        assert tracker.snapshot()["n"]["transitions"] == 0

    def test_snapshot_names_the_error(self):
        tracker = HealthTracker(["n"], fail_after=1)
        tracker.record_failure("n", "connection refused")
        snap = tracker.snapshot()["n"]
        assert snap["healthy"] is False
        assert "refused" in snap["last_error"]

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            HealthTracker(["n"]).record_success("ghost")


# ---------------------------------------------------------------------------
# merge rules
# ---------------------------------------------------------------------------


def _answer(counts, failures=(), timings=()):
    return {
        "counts": counts,
        "nodes": None,
        "failures": list(failures),
        "shard_timings": list(timings),
    }


class TestMerge:
    def test_counts_union_dedups_replicas(self):
        merged = merge_results(
            "//b", [_answer({"d1": 2, "d2": 1}), _answer({"d2": 1, "d3": 4})]
        )
        assert merged["counts"] == {"d1": 2, "d2": 1, "d3": 4}
        assert merged["total"] == 7  # recomputed, not summed across nodes

    def test_answered_document_drops_another_replicas_failure(self):
        failing = _answer({}, [{"doc_id": "d1", "error": "CorruptedFileError", "message": "bad"}])
        merged = merge_results("//b", [failing, _answer({"d1": 3})])
        assert merged["counts"] == {"d1": 3}
        assert merged["failures"] == []

    def test_node_failures_always_survive(self):
        merged = merge_results("//b", [_answer({"d1": 1})], [node_failure("n2", "dead")])
        assert merged["failures"][0]["doc_id"] == "node:n2"
        assert merged["failures"][0]["error"] == "NodeUnavailableError"

    def test_batch_merges_position_by_position(self):
        batches = [
            [_answer({"d1": 1}), _answer({"d1": 5})],
            [_answer({"d2": 2}), _answer({"d2": 6})],
        ]
        merged = merge_batches(["//a", "//b"], batches)
        assert [m["total"] for m in merged] == [3, 11]

    def test_batch_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            merge_batches(["//a", "//b"], [[_answer({})]])


def test_parse_node_spec():
    assert parse_node_spec("127.0.0.1:8001") == ("127.0.0.1:8001", "127.0.0.1", 8001)
    assert parse_node_spec("east=10.0.0.1:9000") == ("east", "10.0.0.1", 9000)
    for bad in ("nope", "host:", ":80", "a=b:c"):
        with pytest.raises(ValueError):
            parse_node_spec(bad)


# ---------------------------------------------------------------------------
# live clusters
# ---------------------------------------------------------------------------

_DOCS = {f"doc{i}": f"<lib><book><t>x{i}</t></book><book><t>y</t></book></lib>" for i in range(8)}


def _backend(tmp_path, name):
    store = DocumentStore(tmp_path / name, num_shards=4)
    server = ReproServer(QueryService(store))
    server.start()
    return server


@pytest.fixture()
def cluster(tmp_path):
    """Two live backends + a coordinator (replication=1) with 8 documents."""
    backends = [_backend(tmp_path, f"b{i}") for i in range(2)]
    specs = [f"n{i}=127.0.0.1:{srv.port}" for i, srv in enumerate(backends)]
    coordinator = CoordinatorServer(specs, probe_interval=30.0)
    coordinator.start()
    client = CoordinatorClient("127.0.0.1", coordinator.port, retries=0)
    for doc_id, xml in _DOCS.items():
        client.put_document(doc_id, xml)
    try:
        yield backends, coordinator, client
    finally:
        client.close()
        coordinator.stop()
        for backend in backends:
            backend.stop()


class TestCoordinatorCluster:
    def test_scatter_gather_matches_per_node_sums(self, cluster):
        _, _, client = cluster
        result = client.run("//book")
        assert result.total == 2 * len(_DOCS)
        assert set(result.counts) == set(_DOCS)
        assert result.failures == []

    def test_plain_repro_client_works_unchanged(self, cluster):
        _, coordinator, _ = cluster
        with ReproClient("127.0.0.1", coordinator.port, retries=0) as plain:
            results = plain.run_many(["//book", "//t"])
            assert [r.total for r in results] == [16, 16]

    def test_doc_routed_query_touches_one_replica_set(self, cluster):
        _, coordinator, client = cluster
        doc_id = next(iter(_DOCS))
        result = client.run("//book", doc_ids=[doc_id])
        assert result.counts == {doc_id: 2}
        owner = coordinator.ring.nodes_for(doc_id)[0]
        table = {n["name"]: n for n in client.nodes()["nodes"]}
        assert table[owner]["requests"] > 0

    def test_domain_error_envelope_passes_through(self, cluster):
        _, _, client = cluster
        with pytest.raises(XPathSyntaxError):
            client.run("//book[")

    def test_document_routes_and_nodes_table(self, cluster):
        _, _, client = cluster
        summary = client.get_document("doc0")
        assert summary["num_nodes"] > 0 and "node" in summary
        stats = client.document_stats("doc0")
        assert stats["doc_id"] == "doc0"
        assert client.delete_document("doc0")["deleted"] == "doc0"
        assert sorted(client.node_names()) == ["n0", "n1"]
        assert client.healthy_nodes() == ["n0", "n1"]

    def test_cluster_stats_sums_documents(self, cluster):
        _, _, client = cluster
        stats = client.stats()
        assert stats["cluster"]["num_documents"] == len(_DOCS)
        assert set(stats["nodes"]) == {"n0", "n1"}

    def test_debug_proxy_by_node_and_aggregate(self, cluster):
        _, _, client = cluster
        aggregated = client.debug_workload()
        assert set(aggregated["nodes"]) == {"n0", "n1"}
        proxied = client.debug_traces(limit=1, node="n1")
        assert proxied["node"] == "n1"
        with pytest.raises(ApiError) as excinfo:
            client.debug_workload(node="ghost")
        assert excinfo.value.status == 400

    def test_estimate_aggregates_across_nodes(self, cluster):
        _, _, client = cluster
        estimate = client.estimate_cost(["//book"])
        assert estimate["num_documents"] == len(_DOCS)
        assert estimate["total_cost"] > 0
        assert set(estimate["nodes"]) == {"n0", "n1"}

    def test_metrics_page_has_coordinator_families(self, cluster):
        _, _, client = cluster
        families = client.metrics()
        for family in (
            "repro_coordinator_node_requests_total",
            "repro_coordinator_node_healthy",
            "repro_coordinator_hedges_total",
            "repro_coordinator_nodes_healthy",
        ):
            assert family in families, family

    def test_node_dying_mid_batch_degrades_not_fails(self, cluster):
        backends, coordinator, client = cluster
        backends[0].stop()  # SIGKILL-equivalent: the port goes dead mid-session
        results = client.run_many(["//book", "//t"])
        for result in results:
            assert 0 < result.total < 2 * len(_DOCS)
            assert [f for f in result.failures if f.doc_id == "node:n0"], result.failures
            assert "n0" in result.failures[0].message
        # and the coordinator keeps serving the surviving node's documents
        assert client.run("//book").total == results[0].total


class TestReplication:
    @pytest.fixture()
    def replicated(self, tmp_path):
        backends = [_backend(tmp_path, f"b{i}") for i in range(2)]
        specs = [f"n{i}=127.0.0.1:{srv.port}" for i, srv in enumerate(backends)]
        coordinator = CoordinatorServer(specs, replication=2, probe_interval=30.0)
        coordinator.start()
        client = CoordinatorClient("127.0.0.1", coordinator.port, retries=0)
        for doc_id, xml in _DOCS.items():
            client.put_document(doc_id, xml)
        try:
            yield backends, coordinator, client
        finally:
            client.close()
            coordinator.stop()
            for backend in backends:
                backend.stop()

    def test_ingest_writes_every_replica(self, replicated):
        _, _, client = replicated
        payload = client.put_document("fresh", "<a><b/></a>", overwrite=True)
        assert payload["replicas"] == ["n0", "n1"]
        assert payload["failed_replicas"] == []

    def test_fanout_dedups_replica_answers(self, replicated):
        _, _, client = replicated
        result = client.run("//book")
        # both replicas hold every document; the union must not double-count
        assert result.total == 2 * len(_DOCS)
        assert set(result.counts) == set(_DOCS)

    def test_dead_replica_is_transparent_for_reads(self, replicated):
        backends, _, client = replicated
        backends[1].stop()
        result = client.run("//book", doc_ids=list(_DOCS))
        assert result.total == 2 * len(_DOCS)
        assert result.failures == []  # the surviving replica answered everything
        assert client.get_document("doc1")["node"] == "n0"


class TestHedging:
    def test_hedge_fires_and_wins_when_the_primary_stalls(self, tmp_path):
        backends = [_backend(tmp_path, f"b{i}") for i in range(2)]
        specs = [f"n{i}=127.0.0.1:{srv.port}" for i, srv in enumerate(backends)]
        coordinator = CoordinatorServer(
            specs, replication=2, hedge_ms=40.0, probe_interval=30.0
        )
        coordinator.start()
        client = CoordinatorClient("127.0.0.1", coordinator.port, retries=0)
        try:
            client.put_document("slowdoc", "<a><b/><b/></a>")
            primary, secondary = coordinator.ring.nodes_for("slowdoc", 2)
            real_request = coordinator._clients[primary].request

            async def stalled(method, path, payload=None, **kwargs):
                await asyncio.sleep(1.0)
                return await real_request(method, path, payload, **kwargs)

            coordinator._clients[primary].request = stalled
            started = time.perf_counter()
            result = client.run("//b", doc_ids=["slowdoc"])
            elapsed = time.perf_counter() - started
            assert result.counts == {"slowdoc": 2}
            assert elapsed < 1.0  # the hedge answered; we never waited out the stall
            table = {n["name"]: n for n in client.nodes()["nodes"]}
            assert table[secondary]["hedges"] == 1
            assert table[secondary]["hedge_wins"] == 1
        finally:
            client.close()
            coordinator.stop()
            for backend in backends:
                backend.stop()

    def test_no_hedge_when_primary_is_fast(self, tmp_path):
        backends = [_backend(tmp_path, f"b{i}") for i in range(2)]
        specs = [f"n{i}=127.0.0.1:{srv.port}" for i, srv in enumerate(backends)]
        coordinator = CoordinatorServer(
            specs, replication=2, hedge_ms=5000.0, probe_interval=30.0
        )
        coordinator.start()
        client = CoordinatorClient("127.0.0.1", coordinator.port, retries=0)
        try:
            client.put_document("d", "<a><b/></a>")
            client.run("//b", doc_ids=["d"])
            table = {n["name"]: n for n in client.nodes()["nodes"]}
            assert all(n["hedges"] == 0 for n in table.values())
        finally:
            client.close()
            coordinator.stop()
            for backend in backends:
                backend.stop()


class TestNodeDownAtStartup:
    def test_dead_node_degrades_then_probes_mark_it_down(self, tmp_path):
        alive = _backend(tmp_path, "alive")
        # grab a port that nothing listens on
        import socket

        probe_socket = socket.socket()
        probe_socket.bind(("127.0.0.1", 0))
        dead_port = probe_socket.getsockname()[1]
        probe_socket.close()

        coordinator = CoordinatorServer(
            [f"up=127.0.0.1:{alive.port}", f"dead=127.0.0.1:{dead_port}"],
            probe_interval=0.05,
            fail_after=2,
        )
        coordinator.start()
        client = CoordinatorClient("127.0.0.1", coordinator.port, retries=0)
        try:
            client.put_document("doc-a", "<a><b/></a>")  # lands on whichever ring slot
            result = client.run("//b")
            failure_nodes = {f.doc_id for f in result.failures}
            assert failure_nodes == {"node:dead"}
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if "dead" not in client.healthy_nodes():
                    break
                time.sleep(0.05)
            assert "dead" not in client.healthy_nodes()
            assert client.healthz()["status"] == "degraded"
            # marked-down nodes are skipped, still reported as a degradation
            result = client.run("//b")
            assert {f.doc_id for f in result.failures} == {"node:dead"}
            assert "marked down" in result.failures[0].message
        finally:
            client.close()
            coordinator.stop()
            alive.stop()


class TestAdmissionPassThrough:
    def test_backend_429_envelope_survives_the_hop(self, tmp_path):
        store = DocumentStore(tmp_path / "b", num_shards=4)
        backend = ReproServer(
            QueryService(store), admission=AdmissionController(cost_budget=0.001)
        )
        backend.start()
        coordinator = CoordinatorServer(
            [f"n0=127.0.0.1:{backend.port}"], probe_interval=30.0
        )
        coordinator.start()
        client = CoordinatorClient("127.0.0.1", coordinator.port, retries=0)
        try:
            client.put_document("d", "<a><b/></a>")
            with pytest.raises(ApiError) as excinfo:
                client.run("//b")
            error = excinfo.value
            assert error.status == 429
            assert error.error_type == "over_budget"
            assert error.details["cost_budget"] == 0.001
            assert error.details["node"] == "n0"
        finally:
            client.close()
            coordinator.stop()
            backend.stop()


class TestBackendClient:
    def test_unreachable_node_raises_node_error(self):
        import socket

        probe_socket = socket.socket()
        probe_socket.bind(("127.0.0.1", 0))
        port = probe_socket.getsockname()[1]
        probe_socket.close()
        from repro.coordinator.backend import NodeClient

        client = NodeClient("n", "127.0.0.1", port, timeout=2.0)
        with pytest.raises(NodeError) as excinfo:
            asyncio.run(client.request("GET", "/healthz"))
        assert excinfo.value.node == "n"
        assert excinfo.value.reason == "unreachable"
