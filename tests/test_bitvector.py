"""Unit and property tests for the plain bit vector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import BitVector


def naive_rank(bits: list[int], value: int, i: int) -> int:
    return sum(1 for b in bits[:i] if bool(b) == bool(value))


class TestBasics:
    def test_empty_vector(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.count_ones == 0
        assert bv.rank1(0) == 0
        assert bv.rank1(10) == 0

    def test_single_bits(self):
        assert BitVector([1])[0] == 1
        assert BitVector([0])[0] == 0

    def test_length_and_counts(self):
        bv = BitVector([1, 0, 1, 1, 0])
        assert len(bv) == 5
        assert bv.count_ones == 3
        assert bv.count_zeros == 2

    def test_getitem_and_negative_index(self):
        bv = BitVector([1, 0, 1])
        assert bv[0] == 1
        assert bv[1] == 0
        assert bv[-1] == 1

    def test_getitem_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv[2]

    def test_from_positions(self):
        bv = BitVector.from_positions([0, 3, 7], 8)
        assert [bv[i] for i in range(8)] == [1, 0, 0, 1, 0, 0, 0, 1]

    def test_to_numpy_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1] * 23
        assert BitVector(bits).to_numpy().tolist() == [bool(b) for b in bits]

    def test_equality_and_hash(self):
        a = BitVector([1, 0, 1])
        b = BitVector(np.array([True, False, True]))
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitVector([1, 0, 0])

    def test_size_in_bits_reasonable(self):
        bv = BitVector([1] * 1000)
        # Bitmap plus the rank directory: well under 4 bits of overhead per bit here.
        assert bv.size_in_bits() < 1000 * 4


class TestRankSelect:
    def test_rank_across_word_boundaries(self):
        bits = [i % 3 == 0 for i in range(200)]
        bv = BitVector(bits)
        for i in range(0, 201, 7):
            assert bv.rank1(i) == naive_rank(bits, 1, i)
            assert bv.rank0(i) == naive_rank(bits, 0, i)

    def test_rank_clamps_out_of_range(self):
        bv = BitVector([1, 1, 0])
        assert bv.rank1(100) == 2
        assert bv.rank1(-5) == 0
        assert bv.rank0(100) == 1

    def test_select_matches_positions(self):
        bits = [1, 0, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        ones = [i for i, b in enumerate(bits) if b]
        for j, position in enumerate(ones, start=1):
            assert bv.select1(j) == position
        zeros = [i for i, b in enumerate(bits) if not b]
        for j, position in enumerate(zeros, start=1):
            assert bv.select0(j) == position

    def test_select_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(ValueError):
            bv.select1(2)
        with pytest.raises(ValueError):
            bv.select0(2)

    def test_generic_rank_select(self):
        bv = BitVector([0, 1, 1, 0])
        assert bv.rank(1, 3) == 2
        assert bv.rank(0, 3) == 1
        assert bv.select(1, 1) == 1
        assert bv.select(0, 2) == 3

    def test_next_and_prev_one(self):
        bv = BitVector([0, 1, 0, 0, 1, 0])
        assert bv.next_one(0) == 1
        assert bv.next_one(2) == 4
        assert bv.next_one(5) == -1
        assert bv.prev_one(5) == 4
        assert bv.prev_one(0) == -1
        assert bv.prev_one(1) == 1


class TestProperties:
    @given(st.lists(st.booleans(), max_size=600))
    @settings(max_examples=60, deadline=None)
    def test_rank_matches_naive(self, bits):
        bv = BitVector(bits)
        for i in range(0, len(bits) + 1, max(1, len(bits) // 17)):
            assert bv.rank1(i) == naive_rank(bits, 1, i)

    @given(st.lists(st.booleans(), min_size=1, max_size=600))
    @settings(max_examples=60, deadline=None)
    def test_select_is_inverse_of_rank(self, bits):
        bv = BitVector(bits)
        for j in range(1, bv.count_ones + 1):
            position = bv.select1(j)
            assert bits[position]
            assert bv.rank1(position) == j - 1

    @given(st.lists(st.booleans(), max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_rank_totals(self, bits):
        bv = BitVector(bits)
        assert bv.rank1(len(bits)) + bv.rank0(len(bits)) == len(bits)
