"""Tests for the word-based text index and the PSSM search extension."""

from __future__ import annotations

import random

import pytest

from repro.text import RLCSAIndex, TextCollection, WordTextIndex
from repro.text.pssm import PositionWeightMatrix, pssm_scan, pssm_search
from repro.text.word_index import tokenize_words


class TestTokenizer:
    def test_basic_tokenisation(self):
        assert tokenize_words(b"The quick, brown fox!") == [b"the", b"quick", b"brown", b"fox"]

    def test_numbers_and_apostrophes(self):
        assert tokenize_words(b"it's 42 o'clock") == [b"it's", b"42", b"o'clock"]

    def test_empty(self):
        assert tokenize_words(b"...") == []


class TestWordTextIndex:
    TEXTS = [
        "the quick brown fox jumps over the lazy dog",
        "a dark horse is an unexpected winner",
        "the princess rode a white horse",
        "board games are played on a board",
        "crude oil prices and the quick recovery",
    ]

    @pytest.fixture(scope="class")
    def index(self):
        return WordTextIndex(self.TEXTS)

    def test_vocabulary(self, index):
        assert index.vocabulary_size > 10
        assert index.num_texts == len(self.TEXTS)

    def test_single_word(self, index):
        assert index.contains("horse").tolist() == [1, 2]
        assert index.contains_count("the") == 3

    def test_phrase_at_word_boundaries(self, index):
        assert index.contains("dark horse").tolist() == [1]
        assert index.contains("quick brown").tolist() == [0]
        assert index.contains("played on a board").tolist() == [3]

    def test_phrase_not_across_texts(self, index):
        assert index.contains("dog a dark").size == 0

    def test_unknown_word(self, index):
        assert index.contains("unicorn").size == 0
        assert not index.contains_exists("unicorn")

    def test_word_vs_substring_semantics(self, index):
        # 'hors' matches as a substring but not as a word (the paper's trade-off).
        assert index.contains("hors").size == 0
        substring = TextCollection(self.TEXTS, sample_rate=4)
        assert substring.contains("hors").size == 2

    def test_global_count(self, index):
        assert index.global_count("the") == 4
        assert index.global_count("board") == 2

    def test_words_of(self, index):
        assert index.words_of(1)[:2] == [b"a", b"dark"]


class TestPSSM:
    @pytest.fixture(scope="class")
    def matrix(self):
        counts = [
            [9, 0, 0, 1],  # A
            [0, 9, 0, 1],  # C
            [0, 0, 9, 1],  # G
            [1, 1, 1, 7],  # T
        ]
        return PositionWeightMatrix.from_counts(counts, name="test")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PositionWeightMatrix.from_counts([[1, 2], [3, 4]])

    def test_score_window(self, matrix):
        assert matrix.length == 4
        consensus = matrix.score_window(b"ACGT")
        other = matrix.score_window(b"TTTA")
        assert consensus > other
        assert consensus <= matrix.max_score() + 1e-9
        assert other >= matrix.min_score() - 1e-9

    def test_score_window_length_check(self, matrix):
        with pytest.raises(ValueError):
            matrix.score_window(b"ACG")

    def test_search_matches_scan(self, matrix):
        rng = random.Random(17)
        texts = ["".join(rng.choice("ACGT") for _ in range(80)) for _ in range(30)]
        texts[3] = texts[3][:10] + "ACGT" + texts[3][14:]
        collection = TextCollection(texts, sample_rate=4)
        threshold = matrix.max_score() - 0.5
        indexed = pssm_search(collection, matrix, threshold)
        scanned = pssm_scan([t.encode() for t in texts], matrix, threshold)
        assert indexed.tolist() == scanned

    def test_search_over_rlcsa(self, matrix):
        texts = ["ACGTACGTACGT", "TTTTTTTT", "ACGTACGTACGT"]
        collection = RLCSAIndex(texts)
        hits = pssm_search(collection, matrix, matrix.max_score() - 0.5)
        assert hits.tolist() == [0, 2]

    def test_threshold_above_max_finds_nothing(self, matrix):
        collection = TextCollection(["ACGTACGT"], sample_rate=2)
        assert pssm_search(collection, matrix, matrix.max_score() + 10).size == 0

    def test_non_dna_symbols_never_match(self, matrix):
        collection = TextCollection(["hello world", "ACGT"], sample_rate=2)
        hits = pssm_search(collection, matrix, matrix.max_score() - 0.5)
        assert hits.tolist() == [1]


class TestRLCSA:
    def test_agrees_with_fm_collection(self):
        rng = random.Random(5)
        exon = "".join(rng.choice("ACGT") for _ in range(50))
        texts = [exon, exon, exon + "TTT", "GG" + exon]
        rlcsa = RLCSAIndex(texts)
        fm = TextCollection(texts, sample_rate=4)
        for pattern in ("ACG", exon[:10], "TTT", "GGZ"):
            assert rlcsa.contains(pattern).tolist() == fm.contains(pattern).tolist()
            assert rlcsa.global_count(pattern) == fm.global_count(pattern)

    def test_extraction(self):
        texts = ["ACGT" * 5, "ACGT" * 5]
        rlcsa = RLCSAIndex(texts)
        assert [rlcsa.get_text_str(d) for d in rlcsa.documents()] == texts

    def test_run_count_small_for_repetitive_data(self):
        texts = ["AAAA" * 200, "AAAA" * 200]
        rlcsa = RLCSAIndex(texts)
        assert rlcsa.num_runs < 20

    def test_size_smaller_than_fm_for_repetitive_data(self):
        base = "ACGTTGCA" * 40
        texts = [base for _ in range(20)]
        rlcsa = RLCSAIndex(texts)
        fm = TextCollection(texts, sample_rate=16, keep_plain_text=False)
        assert rlcsa.fm_index._sequence.size_in_bits() < fm.fm_index._sequence.size_in_bits()
