"""Mapped (v2) storage: cross-version reads, alignment, integrity, fd hygiene."""

from __future__ import annotations

import gc
import os
import resource
import shutil
import weakref

import numpy as np
import pytest

from repro import Document, DocumentStore
from repro.core.errors import CorruptedFileError, StorageError
from repro.storage.codec import ARRAY_ALIGNMENT, FORMAT_VERSION, peek_file_version, write_format

QUERIES = [
    "//item",
    "//item/name",
    "//person/name",
    '//item[contains(., "gold")]',
    "//closed_auction//keyword",
]


@pytest.fixture(scope="module")
def saved_paths(tmp_path_factory, small_site_document):
    """The same document saved as v1 and v2, plus the document itself."""
    root = tmp_path_factory.mktemp("mmap-docs")
    v1 = root / "site-v1.sxsi"
    v2 = root / "site-v2.sxsi"
    with write_format(1):
        small_site_document.save(v1)
    small_site_document.save(v2)
    return v1, v2


# -- version handling --------------------------------------------------------------------


def test_default_write_is_v2_and_peekable(saved_paths):
    v1, v2 = saved_paths
    assert FORMAT_VERSION == 2
    assert peek_file_version(v1) == 1
    assert peek_file_version(v2) == 2


def test_v1_and_v2_cross_read_agree(saved_paths, small_site_document):
    v1, v2 = saved_paths
    docs = {
        "v1-heap": Document.load(v1),
        "v2-heap": Document.load(v2, mapped=False),
        "v2-mapped": Document.load(v2, mapped=True),
    }
    assert not docs["v1-heap"].is_mapped
    assert not docs["v2-heap"].is_mapped
    assert docs["v2-mapped"].is_mapped
    for query in QUERIES:
        expected = small_site_document.count(query)
        for label, doc in docs.items():
            assert doc.count(query) == expected, f"{label} disagrees on {query!r}"
    docs["v2-mapped"].close()


def test_mapped_load_of_v1_file_raises(saved_paths):
    v1, _ = saved_paths
    with pytest.raises(StorageError, match="v1"):
        Document.load(v1, mapped=True)
    # The automatic mode quietly falls back to the eager reader.
    assert not Document.load(v1).is_mapped


def test_auto_mode_maps_v2(saved_paths):
    _, v2 = saved_paths
    doc = Document.load(v2)
    assert doc.is_mapped
    doc.close()


# -- mapped-view invariants --------------------------------------------------------------


def test_every_view_is_64_byte_aligned(saved_paths):
    _, v2 = saved_paths
    doc = Document.load(v2, mapped=True)
    views = doc._mapped_file.views
    assert views, "a mapped load must hand out views"
    for offset, nbytes in views:
        assert offset % ARRAY_ALIGNMENT == 0, f"view at {offset} is misaligned"
        assert nbytes >= 0
    assert doc.mapped_bytes == sum(nbytes for _, nbytes in views)
    doc.close()


def test_mapped_arrays_are_read_only(saved_paths):
    _, v2 = saved_paths
    doc = Document.load(v2, mapped=True)
    words = doc.tree.parentheses._bv._words
    assert isinstance(words, np.ndarray)
    assert not words.flags.writeable
    with pytest.raises(ValueError):
        words[0] = 0
    doc.close()


def test_mapped_and_heap_results_are_identical(saved_paths):
    _, v2 = saved_paths
    mapped = Document.load(v2, mapped=True)
    heap = Document.load(v2, mapped=False)
    for query in QUERIES:
        assert mapped.query(query) == heap.query(query)
        assert mapped.serialize(query) == heap.serialize(query)
    mapped.close()


def test_stats_report_storage_mode(saved_paths):
    _, v2 = saved_paths
    mapped = Document.load(v2, mapped=True)
    heap = Document.load(v2, mapped=False)
    ms = mapped.stats()["storage"]
    hs = heap.stats()["storage"]
    assert ms["mode"] == "mapped"
    assert ms["mapped_bytes"] > 0
    assert ms["verify"] == "lazy"
    assert hs["mode"] == "heap"
    assert hs["mapped_bytes"] == 0
    mapped.close()


def test_close_releases_the_mapping(saved_paths):
    _, v2 = saved_paths
    doc = Document.load(v2, mapped=True)
    assert doc.is_mapped
    doc.close()
    assert not doc.is_mapped
    doc.close()  # idempotent


def test_teardown_is_refcount_driven(saved_paths):
    _, v2 = saved_paths
    doc = Document.load(v2, mapped=True)
    doc.count(QUERIES[0])  # exercise the engine so any cycle would form
    ref = weakref.ref(doc)
    del doc
    gc.collect()
    assert ref() is None, "the engine must not keep the document alive"


# -- integrity ---------------------------------------------------------------------------


@pytest.fixture()
def corrupted_v2(tmp_path, saved_paths):
    _, v2 = saved_paths
    target = tmp_path / "corrupt.sxsi"
    shutil.copy(v2, target)
    probe = Document.load(v2, mapped=True, verify="lazy")
    pending = probe._mapped_file.pending
    assert pending, "lazy mode must defer array checksums"
    name, offset, length, _crc = pending[-1]
    probe.close()
    data = bytearray(target.read_bytes())
    data[offset + length - 1] ^= 0xFF
    target.write_bytes(bytes(data))
    return target


def test_lazy_verify_defers_and_then_detects_corruption(corrupted_v2):
    doc = Document.load(corrupted_v2, mapped=True, verify="lazy")
    assert doc.stats()["storage"]["pending_checksums"] > 0
    with pytest.raises(CorruptedFileError, match="checksum"):
        doc.verify_integrity()
    doc.close()


def test_eager_verify_detects_corruption_at_load(corrupted_v2):
    with pytest.raises(CorruptedFileError, match="checksum"):
        Document.load(corrupted_v2, mapped=True, verify="eager")


def test_verify_off_skips_checksums(corrupted_v2):
    doc = Document.load(corrupted_v2, mapped=True, verify="off")
    assert doc.stats()["storage"]["pending_checksums"] == 0
    assert doc.verify_integrity() == 0
    doc.close()


def test_clean_file_verifies(saved_paths):
    _, v2 = saved_paths
    doc = Document.load(v2, mapped=True, verify="lazy")
    assert doc.verify_integrity() > 0
    assert doc.verify_integrity() == 0  # second call has nothing left to do
    doc.close()


# -- the document store ------------------------------------------------------------------


def test_store_serves_mapped_documents(tmp_path, small_site_document):
    store = DocumentStore(tmp_path / "store", num_shards=4, cache_size=4, mapped=True)
    store.add("site", small_site_document)
    store.close()  # drop the cached in-memory instance so get() loads from disk
    doc = store.get("site")
    assert doc.is_mapped
    assert doc.count(QUERIES[0]) == small_site_document.count(QUERIES[0])
    storage = store.stats()["storage"]
    assert storage["mode"] == "mapped"
    assert storage["resident_mapped_documents"] == 1
    assert storage["resident_mapped_bytes"] > 0
    store.close()
    assert not doc.is_mapped


def test_store_heap_mode_reports_no_mappings(tmp_path, small_site_document):
    store = DocumentStore(tmp_path / "store", num_shards=4, cache_size=4, mapped=False)
    store.add("site", small_site_document)
    store.close()
    assert not store.get("site").is_mapped
    storage = store.stats()["storage"]
    assert storage["mode"] == "heap"
    assert storage["resident_mapped_documents"] == 0
    store.close()


def test_lru_churn_does_not_leak_fds(tmp_path, small_site_document):
    """Loading far more mapped documents than the fd soft limit must not leak.

    Each *live* mapping costs exactly one descriptor (the ``mmap`` module's
    internal dup); the parse channel is closed as soon as a load finishes and
    eviction drops the mapping's fd with the document.  Steady-state usage is
    therefore O(cache_size), independent of how many documents churn through.
    Exercised against a lowered RLIMIT_NOFILE so a leak of one fd per load
    would blow past the limit inside the loop.
    """
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    lowered = min(soft, 256)
    resource.setrlimit(resource.RLIMIT_NOFILE, (lowered, hard))
    try:
        store = DocumentStore(tmp_path / "store", num_shards=4, cache_size=4, mapped=True)
        store.add("seed", small_site_document)
        seed_path = store.root / f"shard-{store.shard_of('seed'):03d}" / "seed.sxsi"
        n_docs = lowered // 4 + 8
        for i in range(n_docs):
            doc_id = f"doc-{i:04d}"
            target = store.root / f"shard-{store.shard_of(doc_id):03d}" / f"{doc_id}.sxsi"
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(seed_path, target)
        before = len(os.listdir("/proc/self/fd")) if os.path.isdir("/proc/self/fd") else None
        for i in range(n_docs):
            doc = store.get(f"doc-{i:04d}")
            assert doc.is_mapped
        del doc
        if before is not None:
            after = len(os.listdir("/proc/self/fd"))
            assert after <= before + store.cache_size + 2, f"fd count grew from {before} to {after}"
        assert len(store.resident_ids()) <= 4
        store.close()
        if before is not None:
            assert len(os.listdir("/proc/self/fd")) <= before + 2, "close() must drop every mapping fd"
    finally:
        resource.setrlimit(resource.RLIMIT_NOFILE, (soft, hard))


# -- fuzz oracle integration -------------------------------------------------------------


def test_oracle_runs_mapped_and_heap_saveload_legs():
    from repro.fuzz.oracle import DocumentOracle

    oracle = DocumentOracle(
        "<site><regions><europe><item><name>Pen</name></item></europe></regions></site>",
        layers=("saveload",),
    )
    assert oracle.reloaded.is_mapped
    assert not oracle.reloaded_heap.is_mapped
    legs = {(layer, label) for layer, label, _ in oracle._layer_outcomes("//item")}
    assert ("saveload", "mapped") in legs
    assert ("saveload", "heap") in legs
