"""Tests for Huffman codes, the wavelet tree and the run-length sequence."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import HuffmanCode, WaveletTree
from repro.sequence.runlength import RunLengthSequence


class TestHuffman:
    def test_requires_a_symbol(self):
        with pytest.raises(ValueError):
            HuffmanCode({})
        with pytest.raises(ValueError):
            HuffmanCode({1: 0})

    def test_single_symbol_gets_one_bit(self):
        code = HuffmanCode({7: 42})
        assert code.code(7) == (0,)
        assert code.code_length(7) == 1

    def test_prefix_free(self):
        frequencies = {i: (i + 1) ** 2 for i in range(10)}
        code = HuffmanCode(frequencies)
        codewords = [code.code(s) for s in code.symbols]
        for a in codewords:
            for b in codewords:
                if a is not b:
                    assert a != b[: len(a)], "codes must be prefix free"

    def test_frequent_symbols_get_short_codes(self):
        code = HuffmanCode({0: 1000, 1: 10, 2: 10, 3: 10})
        assert code.code_length(0) <= min(code.code_length(s) for s in (1, 2, 3))

    def test_average_length_beats_fixed_width(self):
        frequencies = {i: 2 ** (8 - i) for i in range(8)}
        code = HuffmanCode(frequencies)
        assert code.average_length(frequencies) < 3  # log2(8) = 3 bits fixed width

    def test_encode(self):
        code = HuffmanCode({1: 3, 2: 1})
        bits = code.encode([1, 2, 1])
        assert len(bits) == code.code_length(1) * 2 + code.code_length(2)


class TestWaveletTree:
    def test_empty_sequence(self):
        wt = WaveletTree([])
        assert len(wt) == 0
        assert wt.rank(5, 0) == 0

    def test_access_rank_select_small(self):
        data = b"abracadabra"
        wt = WaveletTree(data)
        assert wt.to_list() == list(data)
        assert wt.rank(ord("a"), len(data)) == data.count(b"a")
        assert wt.select(ord("a"), 1) == 0
        assert wt.select(ord("r"), 2) == data.index(b"r", 3)

    def test_rank_of_absent_symbol(self):
        wt = WaveletTree(b"aaa")
        assert wt.rank(ord("z"), 3) == 0

    def test_select_out_of_range(self):
        wt = WaveletTree(b"ab")
        with pytest.raises(ValueError):
            wt.select(ord("a"), 2)

    def test_alphabet_and_counts(self):
        wt = WaveletTree([5, 5, 9, 1])
        assert wt.alphabet == [1, 5, 9]
        assert wt.count(5) == 2
        assert wt.count(3) == 0

    @given(st.lists(st.integers(min_value=0, max_value=12), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_model(self, data):
        wt = WaveletTree(data)
        for i, symbol in enumerate(data):
            assert wt.access(i) == symbol
        for symbol in set(data):
            positions = [i for i, s in enumerate(data) if s == symbol]
            for prefix in range(0, len(data) + 1, max(1, len(data) // 11)):
                assert wt.rank(symbol, prefix) == sum(1 for p in positions if p < prefix)
            for j, position in enumerate(positions, start=1):
                assert wt.select(symbol, j) == position

    def test_large_random_bytes(self):
        rng = random.Random(99)
        data = bytes(rng.randrange(256) for _ in range(3000))
        wt = WaveletTree(data)
        counter = Counter(data)
        for symbol in list(counter)[:20]:
            assert wt.rank(symbol, len(data)) == counter[symbol]


class TestRunLengthSequence:
    def test_empty(self):
        rl = RunLengthSequence([])
        assert len(rl) == 0
        assert rl.rank(1, 10) == 0

    def test_runs_detected(self):
        rl = RunLengthSequence([1, 1, 1, 2, 2, 1])
        assert rl.num_runs == 3
        assert rl.to_list() == [1, 1, 1, 2, 2, 1]

    def test_rank_select_access(self):
        data = [0] * 10 + [3] * 5 + [0] * 2
        rl = RunLengthSequence(data)
        assert rl.access(12) == 3
        assert rl.rank(0, 17) == 12
        assert rl.rank(3, 12) == 2
        assert rl.select(0, 11) == 15
        assert rl.select(3, 5) == 14

    def test_select_out_of_range(self):
        rl = RunLengthSequence([1, 1])
        with pytest.raises(ValueError):
            rl.select(1, 3)
        with pytest.raises(ValueError):
            rl.select(9, 1)

    def test_repetitive_input_compresses(self):
        data = ([7] * 500 + [8] * 500) * 3
        rl = RunLengthSequence(data)
        assert rl.num_runs == 6
        assert rl.size_in_bits() < len(data)  # far below 1 bit per symbol here

    @given(st.lists(st.integers(min_value=0, max_value=4), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_matches_wavelet_tree(self, data):
        rl = RunLengthSequence(data)
        wt = WaveletTree(data)
        for i in range(len(data)):
            assert rl.access(i) == wt.access(i)
        for symbol in set(data):
            assert rl.rank(symbol, len(data)) == wt.rank(symbol, len(data))
            for prefix in range(0, len(data), max(1, len(data) // 7)):
                assert rl.rank(symbol, prefix) == wt.rank(symbol, prefix)
