"""Document persistence (save/load) and the sharded DocumentStore serving layer."""

from __future__ import annotations

import pytest

from repro import (
    Document,
    DocumentNotFoundError,
    DocumentStore,
    IndexOptions,
    StorageError,
)

SITE_XML = """
<site>
 <regions><europe><item id="i1"><name>Pen</name><description>nice <keyword>red</keyword> pen</description></item></europe>
  <asia><item id="i2"><name>Rubber</name><description>Soon discontinued</description></item></asia>
 </regions>
 <people>
  <person id="p0"><name>Alice</name><phone>123</phone></person>
  <person id="p1"><name>Bob</name><homepage>http://b.example</homepage></person>
 </people>
</site>
"""

QUERIES = [
    "//person",
    "//item[keyword]",
    '//person[name = "Alice"]/phone',
    '//*[contains(., "red")]',
    "//item//name",
]


# -- Document.save / Document.load --------------------------------------------------------


@pytest.mark.parametrize(
    "options",
    [
        IndexOptions(),
        IndexOptions(text_index="rlcsa"),
        IndexOptions(text_index="none"),
        IndexOptions(keep_plain_text=False, sample_rate=8),
        IndexOptions(word_index=True),
    ],
    ids=["default", "rlcsa", "none", "no-plain", "word-index"],
)
def test_document_save_load_round_trip(tmp_path, options):
    original = Document.from_string(SITE_XML, options)
    path = tmp_path / "site.sxsi"
    original.save(path)
    loaded = Document.load(path)
    assert loaded.options == original.options
    assert loaded.num_nodes == original.num_nodes
    assert loaded.num_texts == original.num_texts
    assert loaded.tag_counts() == original.tag_counts()
    for query in QUERIES:
        assert loaded.count(query) == original.count(query), query
        assert loaded.serialize(query) == original.serialize(query), query


def test_loaded_document_rebuilds_model(tmp_path):
    original = Document.from_string(SITE_XML)
    path = tmp_path / "site.sxsi"
    original.save(path)
    loaded = Document.load(path)
    model = loaded.model  # reconstructed lazily from the indexes
    assert model.num_nodes == original.model.num_nodes
    assert model.tag_names == original.model.tag_names
    assert model.texts == original.model.texts
    assert list(model.node_tags) == list(original.model.node_tags)
    assert list(model.text_leaf_positions) == list(original.model.text_leaf_positions)


def test_document_bytes_round_trip_preserves_stats():
    original = Document.from_string(SITE_XML)
    loaded = Document.from_bytes(original.to_bytes())
    assert loaded.stats() == original.stats()


def test_document_stats_breakdown():
    doc = Document.from_string(SITE_XML, IndexOptions(word_index=True))
    stats = doc.stats()
    assert stats["num_nodes"] == doc.num_nodes
    assert set(stats["components"]) == {"tree", "tag_tables", "text_index", "plain_text", "word_index"}
    for entry in stats["components"].values():
        assert entry["bytes"] == (entry["bits"] + 7) // 8
    assert stats["total_bits"] == sum(e["bits"] for e in stats["components"].values())
    assert stats["components"]["word_index"]["bits"] > 0
    no_plain = Document.from_string(SITE_XML, IndexOptions(keep_plain_text=False))
    assert no_plain.stats()["components"]["plain_text"]["bits"] == 0


# -- DocumentStore ------------------------------------------------------------------------


def _populate(root, num_docs=6, **kwargs) -> DocumentStore:
    store = DocumentStore(root, **kwargs)
    for i in range(num_docs):
        items = "".join(f"<item id='x{j}'>text {i}-{j}</item>" for j in range(i + 1))
        store.add_xml(f"doc-{i}", f"<doc><n>{i}</n>{items}</doc>")
    return store

def test_store_shards_and_batch_queries(tmp_path):
    store = _populate(tmp_path / "store", num_shards=4, cache_size=2)
    assert len(store) == 6
    assert "doc-3" in store and "missing" not in store
    assert store.count_all("//item") == {f"doc-{i}": i + 1 for i in range(6)}
    assert store.total_count("//item") == 21
    assert store.serialize("doc-0", "//n") == ["<n>0</n>"]
    assert store.query("doc-2", "//item") == store.get("doc-2").query("//item")
    # Documents really are spread over shard subdirectories.
    spread = store.shard_contents()
    assert sum(len(ids) for ids in spread.values()) == 6
    assert len(spread) > 1


def test_store_lru_smaller_than_corpus_is_correct(tmp_path):
    store = _populate(tmp_path / "store", num_shards=4, cache_size=2)
    assert store.cache_info()["capacity"] == 2
    for sweep in range(2):
        assert store.count_all("//item") == {f"doc-{i}": i + 1 for i in range(6)}
    info = store.cache_info()
    assert info["resident"] <= 2
    assert info["evictions"] > 0


def test_store_cache_hits_on_repeat_access(tmp_path):
    store = _populate(tmp_path / "store", num_docs=3, cache_size=2)
    store.hits = store.misses = 0
    store.get("doc-0")
    store.get("doc-0")
    assert store.cache_info()["hits"] >= 1


def test_store_reopen_uses_manifest(tmp_path):
    root = tmp_path / "store"
    store = _populate(root, num_shards=4, cache_size=2)
    counts = store.count_all("//item")
    reopened = DocumentStore(root, num_shards=64, cache_size=3)  # manifest wins over the argument
    assert reopened.num_shards == 4
    assert reopened.count_all("//item") == counts
    assert reopened.stats()["disk_bytes"] > 0


def test_store_scatter_gather_with_combiner(tmp_path):
    store = _populate(tmp_path / "store", num_docs=4, cache_size=2)
    total = store.scatter_gather(
        lambda _, doc: doc.num_nodes, combine=lambda results: sum(results.values())
    )
    assert total == sum(doc.num_nodes for doc in (store.get(d) for d in store.doc_ids()))


def test_store_add_remove_and_errors(tmp_path):
    store = _populate(tmp_path / "store", num_docs=2)
    with pytest.raises(StorageError, match="already exists"):
        store.add_xml("doc-0", "<doc/>")
    store.add_xml("doc-0", "<doc><n>new</n></doc>", overwrite=True)
    assert store.serialize("doc-0", "//n") == ["<n>new</n>"]
    store.remove("doc-1")
    assert "doc-1" not in store
    with pytest.raises(DocumentNotFoundError):
        store.get("doc-1")
    with pytest.raises(DocumentNotFoundError):
        store.remove("doc-1")
    with pytest.raises(StorageError, match="identifier"):
        store.add_xml("../escape", "<doc/>")
    with pytest.raises(StorageError):
        DocumentStore(tmp_path / "bad", num_shards=0)


def test_store_mixed_index_options(tmp_path):
    store = DocumentStore(tmp_path / "store", num_shards=2, cache_size=1)
    store.add("plain", Document.from_string(SITE_XML))
    store.add("rlcsa", Document.from_string(SITE_XML, IndexOptions(text_index="rlcsa")))
    store.add("bare", Document.from_string(SITE_XML, IndexOptions(text_index="none")))
    counts = store.count_all('//*[contains(., "red")]')
    assert len(set(counts.values())) == 1  # same document, same answer, any backend
    assert store.get("rlcsa").options.text_index == "rlcsa"
