"""Tests for the observability layer: tracing, counters, logging, EXPLAIN.

Covers the tracer contract (nesting, ring-buffer bounds, the zero-allocation
disabled path, cross-thread and cross-process propagation), the engine
counters, the structured log formatters and the slow-query log, the EXPLAIN
surface at every level (engine, ``PreparedQuery``, HTTP), the request-id
plumbing between client and server, the extended ``ShardTiming`` wire format,
and the ``repro_engine_*`` families on ``/metrics``.
"""

from __future__ import annotations

import contextvars
import io
import json
import logging
import threading
from types import SimpleNamespace

import pytest

from repro import Document, DocumentStore, QueryService
from repro.client import ReproClient
from repro.obs import (
    ENGINE_COUNTERS,
    NULL_SPAN,
    EngineCounters,
    JsonLineFormatter,
    KeyValueFormatter,
    Tracer,
    configure_logging,
    get_tracer,
    set_tracer,
)
from repro.server import ApiError, ReproServer
from repro.server.json_api import service_result_from_json, service_result_to_json
from repro.service.query_service import ServiceResult, ShardTiming
from repro.store.document_store import DocumentFailure
from repro.xpath.parser import XPathSyntaxError
from repro.xpath.plan import prepare_query

SMALL_XML = "<root><a><b>hello</b></a><a><b>world</b></a><c>tail</c></root>"


@pytest.fixture()
def tracer():
    """A fresh enabled tracer installed as the global one, restored afterwards."""
    fresh = Tracer(capacity=16, enabled=True)
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


# -- tracer ----------------------------------------------------------------------------


def test_nested_spans_build_a_tree(tracer):
    with tracer.span("root", request_id="rid-1", kind="test") as root:
        assert tracer.current_span() is root
        with tracer.span("child") as child:
            child.set_attribute("n", 7)
        with tracer.span("sibling"):
            pass
    assert root.children[0] is child
    assert [c.name for c in root.children] == ["child", "sibling"]
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.request_id == "rid-1"  # inherited from the root
    assert root.duration_seconds >= child.duration_seconds >= 0.0
    record = root.to_dict()
    assert record["name"] == "root"
    assert record["attributes"] == {"kind": "test"}
    assert record["children"][0]["attributes"] == {"n": 7}
    assert [t["name"] for t in tracer.traces()] == ["root"]


def test_disabled_tracer_returns_the_null_span_singleton():
    tracer = Tracer(enabled=False)
    first = tracer.span("a", whatever=1)
    second = tracer.span("b")
    assert first is second is NULL_SPAN
    assert not first  # falsy: call sites can test "is tracing active"
    with first as entered:
        assert entered is NULL_SPAN
        entered.set_attribute("ignored", True)
    assert first.to_dict() == {}
    assert tracer.traces() == []


def test_force_builds_a_trace_but_does_not_record_when_disabled():
    tracer = Tracer(enabled=False)
    with tracer.span("explain", force=True) as root:
        assert root is not NULL_SPAN
        with tracer.span("stage") as child:  # ambient parent: real span despite disabled
            assert child is not NULL_SPAN
    assert [c.name for c in root.children] == ["stage"]
    assert tracer.traces() == []  # the ring buffer only fills when enabled
    assert tracer.info()["completed_traces"] == 1


def test_ring_buffer_keeps_only_the_newest_traces():
    tracer = Tracer(capacity=3, enabled=True)
    for i in range(5):
        with tracer.span(f"t{i}"):
            pass
    assert [t["name"] for t in tracer.traces()] == ["t2", "t3", "t4"]
    assert [t["name"] for t in tracer.traces(limit=2)] == ["t3", "t4"]
    info = tracer.info()
    assert info == {"enabled": True, "capacity": 3, "buffered": 3, "completed_traces": 5}
    tracer.clear()
    assert tracer.traces() == []
    assert tracer.info()["completed_traces"] == 5  # the counter survives a clear


def test_cross_thread_spans_with_an_explicit_parent(tracer):
    root = tracer.span("scatter")

    def worker(i: int) -> None:
        with tracer.span("shard", parent=root, shard=i):
            pass

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    root.finish()
    assert sorted(c.attributes["shard"] for c in root.children) == [0, 1, 2, 3]
    assert all(c.trace_id == root.trace_id for c in root.children)


def test_copied_context_carries_the_ambient_span(tracer):
    seen: list = []
    with tracer.span("root") as root:
        ctx = contextvars.copy_context()

        def in_thread():
            seen.append(ctx.run(lambda: get_tracer().current_span()))

        thread = threading.Thread(target=in_thread)
        thread.start()
        thread.join()
    assert seen == [root]


def test_grafted_process_records_serialise_with_span_children(tracer):
    with tracer.span("root") as root:
        root.add_child_record({"name": "remote", "children": []})
        with tracer.span("local"):
            pass
    record = root.to_dict()
    assert [c["name"] for c in record["children"]] == ["remote", "local"]


def test_tracer_rejects_zero_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


# -- engine counters -------------------------------------------------------------------


def _stats(strategy="top-down", **overrides):
    base = dict(
        strategy=strategy,
        visited_nodes=5,
        marked_nodes=2,
        result_nodes=2,
        jumps=1,
        text_queries=1,
        used_fm_index=True,
        rank_calls=3,
        select_calls=4,
        kernel_batch_calls=2,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


def test_engine_counters_fold_and_reset():
    counters = EngineCounters()
    counters.record_query(_stats("top-down"))
    counters.record_query(_stats("bottom-up", used_fm_index=False))
    snap = counters.snapshot()
    assert snap["queries_total"] == 2
    assert snap["queries_top_down_total"] == 1
    assert snap["queries_bottom_up_total"] == 1
    assert snap["visited_nodes_total"] == 10
    assert snap["fm_index_queries_total"] == 1
    assert snap["rank_calls_total"] == 6
    assert snap["select_calls_total"] == 8
    assert snap["kernel_batch_calls_total"] == 4
    counters.reset()
    assert all(value == 0 for value in counters.snapshot().values())


def test_engine_folds_into_the_global_counters():
    document = Document.from_string(SMALL_XML)
    before = ENGINE_COUNTERS.snapshot()
    assert document.count("//b") == 2
    after = ENGINE_COUNTERS.snapshot()
    assert after["queries_total"] == before["queries_total"] + 1
    assert after["visited_nodes_total"] >= before["visited_nodes_total"]


# -- EXPLAIN ---------------------------------------------------------------------------


def _span_named(record: dict, name: str) -> dict:
    if record["name"] == name:
        return record
    for child in record["children"]:
        found = _span_named(child, name)
        if found:
            return found
    return {}


def test_document_explain_data_schema():
    document = Document.from_string(SMALL_XML)
    data = document.explain_data('//b[contains(., "hello")]')
    assert data["count"] == document.count('//b[contains(., "hello")]')
    assert data["strategy"] in ("top-down", "bottom-up")
    plan = data["plan"]
    assert plan["strategy"] == data["strategy"]
    assert isinstance(plan["seed_estimate"], int) or plan["seed_estimate"] is None
    assert plan["reasons"]
    steps = data["cardinalities"]["steps"]
    assert steps and all("step" in s and "tag_count" in s for s in steps)
    assert any(s["tag_count"] == 2 for s in steps)  # two <b> elements
    predicates = data["cardinalities"]["text_predicates"]
    assert predicates == [{"predicate": "contains('hello')", "matching_texts": 1}]
    # The span tree covers the whole evaluation: the engine.query stage
    # durations sum to ~the engine.query total, which fits inside the root.
    trace = data["trace"]
    query_span = _span_named(trace, "engine.query")
    assert query_span, "explain trace must contain the engine.query span"
    stages = [c["name"] for c in query_span["children"]]
    assert "engine.parse" in stages and "engine.plan" in stages and "engine.evaluate" in stages
    stage_sum = sum(c["duration_seconds"] for c in query_span["children"])
    assert 0.0 < stage_sum <= query_span["duration_seconds"] * 1.05
    assert query_span["duration_seconds"] <= trace["duration_seconds"] * 1.05


def test_explain_does_not_pollute_the_ring_buffer_when_disabled():
    previous = set_tracer(Tracer(enabled=False))
    try:
        document = Document.from_string(SMALL_XML)
        data = document.explain_data("//c")
        assert data["trace"]["name"] == "explain"
        assert get_tracer().traces() == []
    finally:
        set_tracer(previous)


def test_prepared_query_explain():
    document = Document.from_string(SMALL_XML)
    prepared = prepare_query("//a/b")
    data = prepared.explain(document)
    assert data["strategy"] in ("top-down", "bottom-up")
    assert data["count"] == 2
    assert _span_named(data["trace"], "engine.query")


# -- service-level tracing and shard timings -------------------------------------------


@pytest.fixture()
def small_store(tmp_path):
    store = DocumentStore(tmp_path / "store", num_shards=4, cache_size=4)
    for i in range(4):
        store.add(f"doc{i}", Document.from_string(SMALL_XML))
    return store


def test_thread_service_traces_and_shard_timings(tracer, small_store):
    service = QueryService(small_store, max_workers=2)
    result = service.run("//b", explain=True)
    assert result.total == 8
    assert result.explain and result.explain["strategy"] in ("top-down", "bottom-up")
    assert "cardinalities" in result.explain
    for timing in result.shard_timings:
        assert timing.seconds >= timing.eval_seconds >= 0.0
        assert timing.load_seconds >= 0.0
    roots = tracer.traces()
    assert roots, "an explain run must record a trace"
    sweep = roots[-1]
    assert sweep["name"] == "service.run_many"
    shard_spans = [c for c in sweep["children"] if c["name"] == "service.shard"]
    assert shard_spans
    assert any(_span_named(s, "engine.query") for s in shard_spans)


def test_process_service_grafts_worker_span_records(tracer, small_store):
    with QueryService(small_store, max_workers=2, executor="process") as service:
        result = service.run("//b", explain=True)
        assert result.total == 8
        assert result.explain and "plan" in result.explain
    sweep = tracer.traces()[-1]
    shard_spans = [c for c in sweep["children"] if c["name"] == "service.shard"]
    assert shard_spans and all(s["attributes"].get("executor") == "process" for s in shard_spans)
    assert any(_span_named(s, "engine.query") for s in shard_spans)


def test_shard_timing_round_trip_and_old_payload_compat():
    result = ServiceResult(
        query="//a",
        counts={"d": 2},
        total=2,
        nodes=None,
        failures=[DocumentFailure(doc_id="x", error="CorruptedFileError", message="bad")],
        shard_timings=[
            ShardTiming(shard=1, num_documents=3, seconds=0.5, load_seconds=0.1, eval_seconds=0.4)
        ],
        elapsed_seconds=0.6,
        explain={"strategy": "top-down"},
    )
    rebuilt = service_result_from_json(service_result_to_json(result))
    assert rebuilt == result
    # A payload from a server predating the load/eval split still parses.
    old = service_result_to_json(result)
    for timing in old["shard_timings"]:
        del timing["load_seconds"], timing["eval_seconds"]
    del old["explain"]
    compat = service_result_from_json(old)
    assert compat.shard_timings[0].load_seconds == 0.0
    assert compat.shard_timings[0].eval_seconds == 0.0
    assert compat.explain is None


# -- HTTP surface ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def http_corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-store")
    store = DocumentStore(root, num_shards=4, cache_size=4)
    for i in range(4):
        store.add_xml(f"doc-{i}", SMALL_XML)
    return root


@pytest.fixture(scope="module")
def http_server(http_corpus):
    previous = set_tracer(Tracer(capacity=32, enabled=True))
    service = QueryService(DocumentStore(http_corpus, cache_size=4), max_workers=2)
    try:
        with ReproServer(service, slow_query_ms=0.0) as server:
            yield server
    finally:
        set_tracer(previous)


@pytest.fixture()
def http_client(http_server):
    with ReproClient(*http_server.address) as client:
        yield client


def test_request_id_is_echoed_and_generated(http_client):
    http_client.run("//b", request_id="my.request-1")
    assert http_client.last_request_id == "my.request-1"
    http_client.run("//b")  # client generates one
    assert http_client.last_request_id and len(http_client.last_request_id) == 32


def test_errors_carry_the_request_id(http_client):
    with pytest.raises(XPathSyntaxError, match=r"\[request_id=oops-7\]"):
        http_client.run("///bad[[", request_id="oops-7")
    assert http_client.last_request_id == "oops-7"


def test_explain_over_http(http_client):
    result = http_client.run('//b[contains(., "hello")]', explain=True)
    explain = result.explain
    assert explain["strategy"] in ("top-down", "bottom-up")
    assert explain["plan"]["strategy"] == explain["strategy"]
    assert explain["cardinalities"]["steps"]
    trace = explain["trace"]
    assert trace["name"] == "explain"
    assert trace["request_id"] == http_client.last_request_id
    assert _span_named(trace, "engine.query")
    # Convenience wrapper returns the same payload shape.
    assert set(http_client.explain("//c")) >= {"strategy", "plan", "cardinalities", "trace"}
    # Plain queries carry no explain payload.
    assert http_client.run("//b").explain is None


def test_debug_traces_endpoint(http_client):
    http_client.run("//b")
    payload = http_client.debug_traces(limit=5)
    assert payload["enabled"] is True
    assert payload["capacity"] == 32
    assert 0 < len(payload["traces"]) <= 5
    assert all("name" in t and "children" in t for t in payload["traces"])
    with pytest.raises(ApiError):
        http_client._json("GET", "/v1/debug/traces?limit=banana")


def test_metrics_include_engine_families(http_client):
    http_client.run("//b")
    page = http_client.metrics_text()
    for family in (
        "repro_engine_queries_total",
        "repro_engine_rank_calls_total",
        "repro_engine_select_calls_total",
        "repro_engine_kernel_batch_calls_total",
    ):
        assert f"# TYPE {family} counter" in page
        assert any(line.startswith(f"{family} ") for line in page.splitlines())


def test_access_log_and_slow_query_log(http_server):
    stream = io.StringIO()
    logger = configure_logging(level="info", json_lines=True, stream=stream)
    try:
        with ReproClient(*http_server.address) as client:
            client.run("//b", request_id="logged-1")
    finally:
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
    entries = [json.loads(line) for line in stream.getvalue().splitlines()]
    access = [e for e in entries if e["message"] == "request" and e.get("request_id") == "logged-1"]
    assert access, f"no access-log line in {entries!r}"
    entry = access[0]
    assert entry["route"] == "/v1/query"
    assert entry["status"] == 200
    assert entry["duration_ms"] >= 0.0
    assert entry["shards"] >= 1
    # slow_query_ms=0.0 marks every request slow.
    slow = [e for e in entries if e["message"] == "slow query" and e.get("request_id") == "logged-1"]
    assert slow and slow[0]["level"] == "WARNING"


# -- log formatters --------------------------------------------------------------------


def _record(message="hello world", fields=None):
    record = logging.LogRecord("repro.test", logging.INFO, __file__, 1, message, (), None)
    if fields is not None:
        record.fields = fields
    return record


def test_json_line_formatter():
    line = JsonLineFormatter().format(_record(fields={"request_id": "r1", "duration_ms": 1.5}))
    entry = json.loads(line)
    assert entry["message"] == "hello world"
    assert entry["level"] == "INFO"
    assert entry["logger"] == "repro.test"
    assert entry["request_id"] == "r1"
    assert entry["duration_ms"] == 1.5
    assert entry["time"].endswith("Z")


def test_key_value_formatter():
    line = KeyValueFormatter().format(_record(fields={"route": "/v1/query", "duration_ms": 1.5}))
    assert "hello world" in line
    assert "route=/v1/query" in line
    assert "duration_ms=1.500" in line
    spaced = KeyValueFormatter().format(_record(fields={"q": "a b"}))
    assert 'q="a b"' in spaced
