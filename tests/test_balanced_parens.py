"""Tests for the balanced-parentheses structure (range-min-max navigation)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree import BalancedParentheses


def random_tree_parens(rng: random.Random, num_nodes: int) -> str:
    """Generate the parentheses string of a random tree with ``num_nodes`` nodes."""

    def subtree(nodes: int) -> str:
        if nodes == 1:
            return "()"
        remaining = nodes - 1
        parts = []
        while remaining:
            take = rng.randint(1, remaining)
            parts.append(subtree(take))
            remaining -= take
        return "(" + "".join(parts) + ")"

    return subtree(num_nodes)


def naive_matches(parens: str) -> dict[int, int]:
    stack, matches = [], {}
    for i, c in enumerate(parens):
        if c == "(":
            stack.append(i)
        else:
            matches[stack.pop()] = i
    return matches


def naive_enclose(parens: str, i: int) -> int:
    matches = naive_matches(parens)
    best = -1
    for open_pos, close_pos in matches.items():
        if open_pos < i and close_pos > matches.get(i, i):
            if open_pos > best:
                best = open_pos
    return best


class TestValidation:
    def test_rejects_unbalanced(self):
        with pytest.raises(ValueError):
            BalancedParentheses("(()")
        with pytest.raises(ValueError):
            BalancedParentheses("(()))(")

    def test_accepts_empty(self):
        assert len(BalancedParentheses("")) == 0

    def test_str_roundtrip(self):
        assert str(BalancedParentheses("(()())")) == "(()())"


class TestSmallExamples:
    PARENS = "((()())(()))"

    @pytest.fixture(scope="class")
    def bp(self):
        return BalancedParentheses(self.PARENS)

    def test_is_open(self, bp):
        assert bp.is_open(0)
        assert not bp.is_open(len(self.PARENS) - 1)

    def test_excess(self, bp):
        excess = 0
        for i, c in enumerate(self.PARENS):
            excess += 1 if c == "(" else -1
            assert bp.excess(i) == excess

    def test_find_close_matches_naive(self, bp):
        for open_pos, close_pos in naive_matches(self.PARENS).items():
            assert bp.find_close(open_pos) == close_pos

    def test_find_open_matches_naive(self, bp):
        for open_pos, close_pos in naive_matches(self.PARENS).items():
            assert bp.find_open(close_pos) == open_pos

    def test_enclose(self, bp):
        assert bp.enclose(0) == -1
        assert bp.enclose(1) == 0
        assert bp.enclose(2) == 1
        assert bp.enclose(4) == 1
        assert bp.enclose(7) == 0
        assert bp.enclose(8) == 7

    def test_rank_select_open(self, bp):
        opens = [i for i, c in enumerate(self.PARENS) if c == "("]
        for j, position in enumerate(opens, start=1):
            assert bp.select_open(j) == position
            assert bp.rank_open(position) == j - 1

    def test_wrong_parenthesis_kind_raises(self, bp):
        with pytest.raises(ValueError):
            bp.find_close(len(self.PARENS) - 1)
        with pytest.raises(ValueError):
            bp.find_open(0)
        with pytest.raises(ValueError):
            bp.enclose(len(self.PARENS) - 1)


class TestLargeAndRandom:
    def test_deep_tree_crosses_many_blocks(self):
        # A path of 5000 nodes: find_close of the root must search far ahead.
        parens = "(" * 5000 + ")" * 5000
        bp = BalancedParentheses(parens)
        assert bp.find_close(0) == len(parens) - 1
        assert bp.find_close(4999) == 5000
        assert bp.enclose(4999) == 4998

    def test_wide_tree(self):
        parens = "(" + "()" * 3000 + ")"
        bp = BalancedParentheses(parens)
        assert bp.find_close(0) == len(parens) - 1
        assert bp.enclose(5999) == 0

    @given(st.integers(min_value=1, max_value=120), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_trees_match_naive(self, num_nodes, seed):
        rng = random.Random(seed)
        parens = random_tree_parens(rng, num_nodes)
        bp = BalancedParentheses(parens)
        matches = naive_matches(parens)
        for open_pos, close_pos in matches.items():
            assert bp.find_close(open_pos) == close_pos
            assert bp.find_open(close_pos) == open_pos
        probe = rng.sample(sorted(matches), min(10, len(matches)))
        for open_pos in probe:
            assert bp.enclose(open_pos) == naive_enclose(parens, open_pos)
