"""Tests for the SXSI text collection operations (Section 3.2) and the naive backend."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import NaiveTextCollection, TextCollection

TEXTS = ["pen", "Soon discontinued", "blue", "40", "rubber", "30", "blues", "disco"]

WORD = st.text(alphabet="abc", max_size=6)


@pytest.fixture(scope="module")
def collection():
    return TextCollection(TEXTS, sample_rate=4)


@pytest.fixture(scope="module")
def naive():
    return NaiveTextCollection([t.encode() for t in TEXTS])


class TestAgainstNaive:
    @pytest.mark.parametrize("pattern", ["b", "blue", "o", "disco", "40", "x", "ue", ""])
    def test_contains(self, collection, naive, pattern):
        assert collection.contains(pattern).tolist() == naive.contains(pattern.encode()).tolist()

    @pytest.mark.parametrize("pattern", ["b", "blue", "S", "4", "disco", "zz"])
    def test_starts_with(self, collection, naive, pattern):
        assert collection.starts_with(pattern).tolist() == naive.starts_with(pattern.encode()).tolist()

    @pytest.mark.parametrize("pattern", ["0", "e", "ued", "blue", "s", "zzz"])
    def test_ends_with(self, collection, naive, pattern):
        assert collection.ends_with(pattern).tolist() == naive.ends_with(pattern.encode()).tolist()

    @pytest.mark.parametrize("pattern", TEXTS + ["nope", "blu"])
    def test_equals(self, collection, naive, pattern):
        assert collection.equals(pattern).tolist() == naive.equals(pattern.encode()).tolist()

    @pytest.mark.parametrize("pattern", ["blue", "40", "a", "zzz", "rubber"])
    def test_comparisons(self, collection, naive, pattern):
        assert collection.less_than(pattern).tolist() == naive.less_than(pattern.encode()).tolist()
        assert collection.less_equal(pattern).tolist() == naive.less_equal(pattern.encode()).tolist()
        assert collection.greater_than(pattern).tolist() == naive.greater_than(pattern.encode()).tolist()
        assert collection.greater_equal(pattern).tolist() == naive.greater_equal(pattern.encode()).tolist()

    @pytest.mark.parametrize("pattern", ["b", "o", "disco", ""])
    def test_global_count(self, collection, naive, pattern):
        assert collection.global_count(pattern) >= 0
        if pattern:
            assert collection.global_count(pattern) == naive.global_count(pattern.encode())

    def test_report_occurrences(self, collection, naive):
        assert collection.report_occurrences("ue") == naive.report_occurrences(b"ue")


class TestApi:
    def test_get_text_roundtrip(self, collection):
        for doc, text in enumerate(TEXTS):
            assert collection.get_text_str(doc) == text

    def test_get_text_without_plain_store(self):
        tc = TextCollection(TEXTS, sample_rate=4, keep_plain_text=False)
        assert tc.plain is None
        assert [tc.get_text_str(d) for d in tc.documents()] == TEXTS

    def test_contains_exists_and_count(self, collection):
        assert collection.contains_exists("blue")
        assert not collection.contains_exists("zzz")
        assert collection.contains_count("b") == 3

    def test_contains_auto_matches_fm(self, collection):
        assert collection.contains_auto("b", cutoff=0).tolist() == collection.contains(
            "b"
        ).tolist()
        assert collection.contains_auto("b", cutoff=10**9).tolist() == collection.contains("b").tolist()

    def test_empty_collection(self):
        tc = TextCollection([])
        assert tc.num_texts == 1  # a single empty text placeholder
        assert tc.contains("x").size == 0

    def test_size_in_bits_positive(self, collection):
        assert collection.size_in_bits() > 0

    def test_empty_pattern_conventions(self, collection):
        assert collection.contains("").size == len(TEXTS)
        assert collection.starts_with("").size == len(TEXTS)
        assert collection.less_than("").size == 0


class TestPropertyAgainstNaive:
    @given(st.lists(WORD, min_size=1, max_size=8), WORD)
    @settings(max_examples=50, deadline=None)
    def test_all_operations(self, texts, pattern):
        collection = TextCollection(texts, sample_rate=3)
        naive = NaiveTextCollection([t.encode() for t in texts])
        encoded = pattern.encode()
        assert collection.contains(pattern).tolist() == naive.contains(encoded).tolist()
        assert collection.starts_with(pattern).tolist() == naive.starts_with(encoded).tolist()
        assert collection.ends_with(pattern).tolist() == naive.ends_with(encoded).tolist()
        assert collection.equals(pattern).tolist() == naive.equals(encoded).tolist()
        assert collection.less_than(pattern).tolist() == naive.less_than(encoded).tolist()
