"""The example scripts must run end to end (small parameters)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str]) -> None:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py", [])
    output = capsys.readouterr().out
    assert "count //book" in output
    assert "strategy:" in output


def test_xmark_example(capsys):
    run_example("xmark_auction_queries.py", ["0.1"])
    output = capsys.readouterr().out
    assert "X01" in output and "X17" in output


def test_medline_example(capsys):
    run_example("medline_text_search.py", ["40"])
    output = capsys.readouterr().out
    assert "M01" in output and "M11" in output


def test_bio_example(capsys):
    run_example("bio_sequence_queries.py", ["5"])
    output = capsys.readouterr().out
    assert "PSSM" in output


def test_serve_http_example(capsys):
    run_example("serve_http.py", ["0.02", "4"])
    output = capsys.readouterr().out
    assert "batch query over HTTP" in output
    assert "ingested 'uploaded'" in output
    assert "server stopped cleanly" in output


@pytest.mark.parametrize("script", ["quickstart.py", "xmark_auction_queries.py", "medline_text_search.py", "bio_sequence_queries.py", "serve_http.py"])
def test_examples_exist(script):
    assert (EXAMPLES / script).exists()
