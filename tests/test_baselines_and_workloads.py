"""Tests for the baseline engines and the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro import Document
from repro.baseline import DomEngine, StreamingEngine, build_dom
from repro.core.errors import UnsupportedQueryError
from repro.workloads import (
    FM_PATTERNS,
    MEDLINE_QUERIES,
    WIKI_QUERIES,
    XMARK_QUERIES,
    generate_medline_xml,
    generate_treebank_xml,
    generate_xmark_xml,
    jaspar_like_matrices,
)
from repro.workloads.medline import PLANTED_PHRASES
from repro.xmlmodel import build_model


class TestDomEngine:
    def test_build_dom_structure(self, paper_example_model):
        root = build_dom(paper_example_model)
        assert root.label == "&"
        parts = root.children[0]
        assert parts.label == "parts"
        assert [c.label for c in parts.children] == ["part", "part"]
        assert root.string_value() == "penblue40Soon discontinued.rubber30"

    def test_counts_match_succinct_engine(self, small_site_document, small_site_model):
        dom = DomEngine(small_site_model)
        for query in ("//keyword", "//person[phone or homepage]/name", "/site/regions/*/item"):
            assert dom.count(query) == small_site_document.count(query)

    def test_attributes(self, small_site_model):
        dom = DomEngine(small_site_model)
        assert dom.count("//person[@id]") == 3
        assert dom.count('//person[@id = "p1"]') == 1

    def test_serialize(self, small_site_model):
        dom = DomEngine(small_site_model)
        assert dom.serialize("//keyword")[0] == "<keyword>red</keyword>"

    def test_pssm_unsupported(self, small_site_model):
        dom = DomEngine(small_site_model)
        with pytest.raises(UnsupportedQueryError):
            dom.count("//keyword[PSSM(., M1)]")


class TestStreamingEngine:
    def test_counts_match_indexed_engine(self, xmark_xml, xmark_document):
        stream = StreamingEngine(xmark_xml)
        for name in ("X01", "X02", "X03", "X04", "X14"):
            query = XMARK_QUERIES[name]
            assert stream.count(query) == xmark_document.count(query), name

    def test_text_node_steps(self, small_site_document):
        xml_count = StreamingEngine(
            "<a><b>x</b><b>y</b><c/></a>"
        ).count("//b/text()")
        assert xml_count == 2

    def test_rejects_predicates(self):
        with pytest.raises(UnsupportedQueryError):
            StreamingEngine("<a/>").count("//a[b]")

    def test_rejects_attribute_axis(self):
        with pytest.raises(UnsupportedQueryError):
            StreamingEngine("<a/>").count("//a/@id")


class TestWorkloadGenerators:
    def test_generators_are_deterministic(self):
        assert generate_xmark_xml(scale=0.1, seed=7) == generate_xmark_xml(scale=0.1, seed=7)
        assert generate_medline_xml(num_citations=5, seed=1) == generate_medline_xml(num_citations=5, seed=1)
        assert generate_treebank_xml(num_sentences=5, seed=1) == generate_treebank_xml(num_sentences=5, seed=1)

    def test_generators_produce_wellformed_xml(self, xmark_xml, medline_xml, treebank_xml, wiki_xml, bio_xml):
        for xml in (xmark_xml, medline_xml, treebank_xml, wiki_xml, bio_xml):
            model = build_model(xml)
            assert model.num_nodes > 10

    def test_xmark_vocabulary_supports_queries(self, xmark_document):
        counts = xmark_document.tag_counts()
        for tag in ("site", "regions", "item", "listitem", "keyword", "person", "closed_auction", "parlist"):
            assert counts.get(tag, 0) > 0, tag
        # listitem must be recursive (nested below itself), as in real XMark.
        listitem = xmark_document.tree.tag_id("listitem")
        assert Document  # keep import referenced
        from repro.tree import TagPositionTables

        assert TagPositionTables(xmark_document.tree).is_recursive(listitem)

    def test_xmark_scaling(self):
        small = generate_xmark_xml(scale=0.1, seed=2)
        large = generate_xmark_xml(scale=0.4, seed=2)
        assert len(large) > 2 * len(small)

    def test_medline_planted_phrases_present(self, medline_document):
        collection = medline_document.text_collection
        found = sum(1 for phrase, _ in PLANTED_PHRASES if collection.contains_exists(phrase))
        assert found >= len(PLANTED_PHRASES) // 2

    def test_medline_queries_have_results(self, medline_document):
        total = sum(medline_document.count(MEDLINE_QUERIES[name]) for name in ("M02", "M03", "M05", "M08"))
        assert total > 0

    def test_fm_patterns_have_spread(self, medline_document):
        counts = [medline_document.text_collection.global_count(p) for p in FM_PATTERNS]
        assert counts[-1] > 100  # the space character is extremely frequent
        assert min(counts) < 10

    def test_treebank_is_deep_and_recursive(self, treebank_document):
        from repro.tree import TagPositionTables

        np_tag = treebank_document.tree.tag_id("NP")
        assert TagPositionTables(treebank_document.tree).is_recursive(np_tag)
        assert treebank_document.count("//NP") > 20

    def test_wiki_planted_phrases(self, wiki_xml):
        doc = Document.from_string(wiki_xml)
        assert doc.count(WIKI_QUERIES["W07"]) >= 0
        assert doc.count("//page") == 60

    def test_bio_document_matches_dtd(self, bio_xml):
        doc = Document.from_string(bio_xml)
        assert doc.count("/chromosome/gene") == 8
        assert doc.count("//gene/promoter") == 8
        assert doc.count("//transcript/exon/sequence") > 0
        # Transcripts repeat exon sequences: the text is highly repetitive.

    def test_jaspar_like_matrices(self):
        matrices = jaspar_like_matrices()
        assert sorted(matrices) == ["M1", "M2", "M3"]
        assert matrices["M1"].length == 8
        assert matrices["M3"].length == 14
