"""Replay every pinned fuzz seed through the differential oracle (tier 1).

Each seed under ``tests/fuzz_corpus/`` is a shrunken historical disagreement
or a deliberately nasty shape; the oracle re-checks it across the engine,
save/load, store and service layers on every test run, so a fixed bug stays
fixed through every refactor.  Add new seeds with::

    PYTHONPATH=src python -m repro.fuzz --iterations 2000 --corpus-dir tests/fuzz_corpus
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import FuzzCase, check_case, load_seeds, seed_to_case

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
SEEDS = load_seeds(CORPUS_DIR)


def test_corpus_is_populated():
    assert len(SEEDS) >= 10, "the pinned corpus must hold at least ten shrunken seeds"


def test_corpus_covers_both_modes():
    modes = {case.mode for _, case in SEEDS}
    assert modes == {"supported", "unsupported"}


def test_corpus_covers_multiple_index_options():
    assert len({case.index_options for _, case in SEEDS}) >= 3


@pytest.mark.parametrize(
    "path,case", SEEDS, ids=[f"{path.stem}-{case.query[:30]}" for path, case in SEEDS]
)
def test_seed_replays_clean(path, case):
    disagreement = check_case(case)
    assert disagreement is None, f"{path.name}: {disagreement}\nnote: {case.note}"


def test_seed_files_round_trip(tmp_path):
    from repro.fuzz import save_seed
    from repro.fuzz.corpus import case_to_seed

    case = FuzzCase(xml="<a>x</a>", query="//a", note="round trip")
    written = save_seed(tmp_path, case)
    (loaded_path, loaded), = load_seeds(tmp_path)
    assert loaded_path == written
    assert loaded == case
    assert seed_to_case(case_to_seed(case)) == case
