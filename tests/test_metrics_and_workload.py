"""The PR 8 observability layer: registry, strict parser, workload, residency.

Covers the acceptance bar: families render with exactly one HELP/TYPE header
each and survive the strict in-repo parser, counters are exact under thread
concurrency, process-pool engine counters match inline counts, query shapes
fingerprint stably across literal changes, and mincore residency readings sit
in ``0 < resident <= mapped``.
"""

from __future__ import annotations

import threading

import pytest

from repro import Document, DocumentStore, IndexOptions, QueryService
from repro.obs.counters import ENGINE_COUNTERS, EngineCounters
from repro.obs.metrics import MetricsRegistry, parse_prometheus_text, set_registry
from repro.obs.resources import (
    document_residency,
    mincore_available,
    process_resources,
)
from repro.obs.workload import WorkloadAnalytics, fingerprint, set_workload
from repro.server.metrics import ServerMetrics
from repro.storage.codec import write_format
from repro.workloads import generate_xmark_xml

SMALL_XML = "<site><item><name>gold ring</name></item><item><name>tin can</name></item></site>"


@pytest.fixture()
def registry():
    """A fresh global registry; restores the previous one afterwards."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


@pytest.fixture()
def workload():
    """A fresh global workload analytics; restores the previous one afterwards."""
    fresh = WorkloadAnalytics()
    previous = set_workload(fresh)
    try:
        yield fresh
    finally:
        set_workload(previous)


# -- registry basics -------------------------------------------------------------------


def test_counter_gauge_histogram_render_and_parse(registry):
    registry.counter("requests_total", "Requests.", labels=("route", "method")).labels(
        route="/v1/documents/{id}", method="GET"
    ).inc(3)
    registry.gauge("inflight", "In flight.").set(2)
    hist = registry.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    page = registry.render()
    families = parse_prometheus_text(page)  # must not raise
    assert families["repro_requests_total"]["type"] == "counter"
    # Label names render sorted, and a `}` inside a label value survives.
    assert 'repro_requests_total{method="GET",route="/v1/documents/{id}"} 3' in page.splitlines()
    samples = {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in families["repro_latency_seconds"]["samples"]
    }
    assert samples[("repro_latency_seconds_bucket", (("le", "0.1"),))] == 1
    assert samples[("repro_latency_seconds_bucket", (("le", "1"),))] == 2
    assert samples[("repro_latency_seconds_bucket", (("le", "+Inf"),))] == 3
    assert samples[("repro_latency_seconds_count", ())] == 3


def test_each_family_header_emitted_exactly_once(registry):
    fam = registry.counter("hits_total", "Hits.", labels=("kind",))
    fam.labels(kind="a").inc()
    fam.labels(kind="b").inc()
    lines = registry.render().splitlines()
    assert lines.count("# HELP repro_hits_total Hits.") == 1
    assert lines.count("# TYPE repro_hits_total counter") == 1
    # Every family has both headers (the old renderer skipped # HELP).
    types = [line.split()[2] for line in lines if line.startswith("# TYPE ")]
    helps = [line.split()[2] for line in lines if line.startswith("# HELP ")]
    assert sorted(types) == sorted(helps)


def test_registration_is_idempotent_but_type_mismatch_raises(registry):
    first = registry.counter("x_total", "X.")
    assert registry.counter("x_total", "X again.") is first
    with pytest.raises(ValueError):
        registry.gauge("x_total", "Not a counter.")
    with pytest.raises(ValueError):
        registry.counter("x_total", "Wrong labels.", labels=("a",))


def test_counter_rejects_negative_and_le_label(registry):
    with pytest.raises(ValueError):
        registry.counter("y_total", "Y.").inc(-1)
    with pytest.raises(ValueError):
        registry.histogram("z_seconds", "Z.", labels=("le",))


def test_callback_family_skips_none_and_rebinds(registry):
    holder = {"value": None}
    registry.gauge_callback("resident_bytes", "Resident.", lambda: holder["value"])
    samples = [line for line in registry.render().splitlines() if not line.startswith("#")]
    assert not any(line.startswith("repro_resident_bytes") for line in samples)
    holder["value"] = 42.0
    assert "repro_resident_bytes 42" in registry.render()
    # Newest provider wins.
    registry.gauge_callback("resident_bytes", "Resident.", lambda: 7.0)
    assert "repro_resident_bytes 7" in registry.render()


def test_disabled_registry_noops(registry):
    fam = registry.counter("w_total", "W.")
    registry.disable()
    fam.inc(5)
    registry.histogram("w_seconds", "W.").observe(1.0)
    registry.enable()
    assert fam.value == 0
    fam.inc(2)
    assert fam.value == 2


def test_concurrent_increments_from_threads_are_exact(registry):
    fam = registry.counter("threads_total", "T.")
    child = fam.labels()

    def work():
        for _ in range(1000):
            child.inc()

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert fam.value == 8000


# -- strict parser rejections ----------------------------------------------------------


@pytest.mark.parametrize(
    "page",
    [
        # Duplicate # TYPE.
        "# TYPE repro_a counter\n# TYPE repro_a counter\nrepro_a 1\n",
        # Header after samples (the old renderer's re-emitted # TYPE).
        "# TYPE repro_a counter\nrepro_a 1\n# TYPE repro_a counter\nrepro_a 2\n",
        # Sample without a declared family.
        "repro_b 1\n",
        # HELP but never a TYPE.
        "# HELP repro_c C.\n",
        # Unsorted label names.
        '# TYPE repro_d counter\nrepro_d{b="1",a="2"} 1\n',
        # Duplicate label names.
        '# TYPE repro_d counter\nrepro_d{a="1",a="2"} 1\n',
        # NaN value.
        "# TYPE repro_e gauge\nrepro_e NaN\n",
        # Non-numeric value.
        "# TYPE repro_f gauge\nrepro_f oops\n",
        # Non-cumulative histogram buckets.
        "# TYPE repro_g histogram\n"
        'repro_g_bucket{le="0.1"} 5\nrepro_g_bucket{le="1"} 3\n'
        'repro_g_bucket{le="+Inf"} 5\nrepro_g_sum 1\nrepro_g_count 5\n',
        # Missing +Inf bucket.
        '# TYPE repro_h histogram\nrepro_h_bucket{le="0.1"} 1\nrepro_h_sum 1\nrepro_h_count 1\n',
        # +Inf bucket disagrees with _count.
        "# TYPE repro_i histogram\n"
        'repro_i_bucket{le="+Inf"} 3\nrepro_i_sum 1\nrepro_i_count 4\n',
        # Unterminated label set.
        '# TYPE repro_j counter\nrepro_j{a="1" 1\n',
    ],
)
def test_parser_rejects_malformed_pages(page):
    with pytest.raises(ValueError):
        parse_prometheus_text(page)


def test_parser_handles_escapes_and_braces_in_label_values():
    page = (
        "# TYPE repro_k counter\n"
        'repro_k{note="a\\"b\\\\c\\nd",route="/v1/documents/{id}"} 1\n'
    )
    families = parse_prometheus_text(page)
    ((_, labels, value),) = families["repro_k"]["samples"]
    assert labels["route"] == "/v1/documents/{id}"
    assert labels["note"] == 'a"b\\c\nd'
    assert value == 1


# -- ServerMetrics façade --------------------------------------------------------------


def test_server_metrics_page_is_strictly_parseable(registry):
    metrics = ServerMetrics()
    metrics.observe_request("/v1/query", "POST", 200, 0.012)
    metrics.observe_rejection("oversized")
    page = metrics.render(gauges={"inflight_requests": 1, "plan_cache_hit_ratio": 0.5})
    families = parse_prometheus_text(page)
    assert families["repro_http_requests_total"]["type"] == "counter"
    assert families["repro_http_request_seconds"]["type"] == "histogram"
    # Engine counter and process resource families ride along as callbacks.
    assert "repro_engine_queries_total" in families
    assert "repro_process_max_rss_bytes" in families


def test_server_metrics_non_default_namespace_is_isolated(registry):
    private = ServerMetrics(namespace="other")
    assert private.registry is not registry
    private.observe_request("/x", "GET", 200, 0.001)
    assert "other_http_requests_total" in private.render()
    # Nothing leaked into the default-namespace registry.
    assert registry.get("http_requests_total") is None


# -- engine counters across processes --------------------------------------------------


def test_engine_counter_delta_and_merge():
    counters = EngineCounters()
    before = counters.snapshot()
    merged = EngineCounters()
    merged.merge({"queries_total": 3, "visited_nodes_total": 70})
    delta = merged.delta_since(before)
    assert delta["queries_total"] == 3
    assert delta["visited_nodes_total"] == 70
    counters.merge(delta)
    assert counters.snapshot()["queries_total"] == 3


def test_process_executor_counters_match_inline(tmp_path):
    store = DocumentStore(tmp_path / "corpus", num_shards=4, cache_size=4)
    for i in range(4):
        store.add_xml(f"doc-{i}", generate_xmark_xml(scale=0.005, seed=i), IndexOptions(sample_rate=16))
    queries = ["//item", "//item/name"]

    ENGINE_COUNTERS.reset()
    inline = QueryService(store, max_workers=1)
    inline_results = inline.run_many(queries)
    inline.close()
    inline_counts = ENGINE_COUNTERS.snapshot()

    ENGINE_COUNTERS.reset()
    with QueryService(store, max_workers=2, executor="process") as service:
        process_results = service.run_many(queries)
    process_counts = ENGINE_COUNTERS.snapshot()

    assert [r.counts for r in process_results] == [r.counts for r in inline_results]
    # The shipped worker deltas make the parent totals match the inline sweep.
    for field in ("queries_total", "visited_nodes_total", "result_nodes_total"):
        assert process_counts[field] == inline_counts[field], field
    assert process_counts["queries_total"] == len(queries) * 4


# -- workload analytics ----------------------------------------------------------------


def test_fingerprint_stable_across_literals():
    assert fingerprint('//item[contains(., "gold")]') == fingerprint('//item[contains(., "silver")]')
    assert fingerprint("//a[position() = 3]") == fingerprint("//a[position() = 7]")
    assert fingerprint("//a  [ @id ]") == fingerprint("//a [ @id ]")
    assert fingerprint("//item/name") != fingerprint("//item/price")
    # Literal contents are bucketed, not leaked.
    assert "gold" not in fingerprint('//item[contains(., "gold")]')
    assert "$str" in fingerprint('//item[contains(., "gold")]')


def test_workload_record_and_snapshot(workload):
    workload.record('//a[text()="x"]', 0.002, result_count=5, visited=40, strategies={"top-down": 2})
    workload.record('//a[text()="y"]', 0.004, result_count=1, visited=10, strategies={"top-down": 2})
    workload.record("//b", 0.5, result_count=0, visited=900, failures=1, request_id="req-1")
    workload.record_sweep(0.01, 0.004, 0.005)
    snap = workload.snapshot()
    assert snap["total_queries"] == 3
    assert snap["total_failures"] == 1
    assert snap["num_shapes"] == 2
    assert snap["sweeps"]["count"] == 1
    shapes = {shape["shape"]: shape for shape in snap["shapes"]}
    merged = shapes[fingerprint('//a[text()="x"]')]
    assert merged["queries"] == 2
    assert merged["results"]["total"] == 6
    assert merged["visited"]["max"] == 40
    assert merged["strategies"] == {"top-down": 4}
    assert merged["latency"]["count"] == 2
    # Slowest query first, with its request id.
    assert snap["slow_queries"][0]["query"] == "//b"
    assert snap["slow_queries"][0]["request_id"] == "req-1"


def test_workload_slow_table_is_bounded():
    analytics = WorkloadAnalytics(slow_query_capacity=2)
    analytics.record("//a", 0.3)
    analytics.record("//b", 0.1)
    analytics.record("//c", 0.2)
    slow = analytics.snapshot()["slow_queries"]
    assert [entry["query"] for entry in slow] == ["//a", "//c"]  # //b (fastest) evicted


def test_workload_shape_cap_folds_into_other():
    analytics = WorkloadAnalytics(max_shapes=2)
    analytics.record("//a", 0.001)
    analytics.record("//b", 0.001)
    analytics.record("//c", 0.001)
    analytics.record("//d", 0.001)
    snap = analytics.snapshot()
    shapes = {shape["shape"] for shape in snap["shapes"]}
    assert "(other)" in shapes
    assert snap["total_queries"] == 4


def test_workload_disabled_records_nothing(workload):
    workload.disable()
    workload.record("//a", 0.001)
    workload.record_sweep(0.1, 0.0, 0.1)
    assert workload.snapshot()["total_queries"] == 0
    workload.enable()


def test_workload_estimated_cost_hook(workload):
    workload.record("//a", 0.001, estimated_cost=12.5)
    workload.record("//a", 0.002, estimated_cost=7.5)
    (shape,) = workload.snapshot()["shapes"]
    assert shape["estimated_cost"] == {
        "queries": 2,
        "total": 20.0,
        "avg": 10.0,
        "actual_visited_avg": 0.0,
        "estimated_vs_actual": None,
    }


def test_workload_estimated_vs_actual_ratio(workload):
    workload.record("//a", 0.001, visited=10, estimated_cost=12.5)
    workload.record("//a", 0.002, visited=10, estimated_cost=7.5)
    # A record without an estimate must not dilute the ratio's denominator.
    workload.record("//a", 0.003, visited=1000)
    (shape,) = workload.snapshot()["shapes"]
    assert shape["estimated_cost"]["queries"] == 2
    assert shape["estimated_cost"]["actual_visited_avg"] == 10.0
    assert shape["estimated_cost"]["estimated_vs_actual"] == 1.0


def test_service_records_workload_per_shape(tmp_path, registry, workload):
    store = DocumentStore(tmp_path / "wl", num_shards=2, cache_size=2)
    store.add_xml("d1", SMALL_XML)
    store.add_xml("d2", SMALL_XML)
    service = QueryService(store, max_workers=1)
    service.run_many(
        ['//item[contains(., "gold")]', '//item[contains(., "tin")]', "//item/name"],
        request_id="req-42",
    )
    service.close()
    snap = workload.snapshot()
    assert snap["total_queries"] == 3
    shapes = {shape["shape"]: shape for shape in snap["shapes"]}
    contains_shape = fingerprint('//item[contains(., "gold")]')
    assert shapes[contains_shape]["queries"] == 2
    assert shapes[contains_shape]["last_request_id"] == "req-42"
    assert shapes[contains_shape]["latency"]["count"] == 2
    assert snap["sweeps"]["count"] == 1
    assert snap["sweeps"]["eval_seconds"] > 0
    # The service families folded into the registry as well.
    assert registry.get("service_sweep_seconds") is not None
    page = registry.render()
    parse_prometheus_text(page)
    assert "repro_service_eval_seconds_total" in page


# -- store and storage counters --------------------------------------------------------


def test_store_counters_and_remap_on_revalidate(tmp_path, registry):
    import os

    store = DocumentStore(tmp_path / "store", num_shards=2, cache_size=1)
    path1 = store.add_xml("a", SMALL_XML)
    store.add_xml("b", SMALL_XML)  # evicts "a" (capacity 1)
    assert store.evictions >= 1
    store.get("b")
    assert store.hits >= 1
    store.get("a")  # miss: reload from disk
    assert store.misses >= 1
    os.utime(path1)  # stat revalidation now sees a different mtime
    store.get("a")
    assert store.remaps == 1
    assert store.cache_info()["remaps"] == 1
    for name in (
        "store_cache_hits_total",
        "store_cache_misses_total",
        "store_cache_evictions_total",
        "store_cache_remaps_total",
    ):
        assert registry.get(name) is not None, name
    assert registry.get("store_cache_remaps_total").value == 1


def test_storage_counters_fold_on_load(tmp_path, registry):
    doc = Document.from_string(SMALL_XML)
    path = tmp_path / "doc.sxsi"
    doc.save(path)

    eager = Document.load(path, mapped=True, verify="eager")
    assert registry.get("storage_mapped_loads_total").value == 1
    assert registry.get("storage_mapped_bytes_total").value == path.stat().st_size
    eager_checked = registry.get("storage_crc_verifications_total").labels(mode="eager").value
    assert eager_checked > 0
    eager.close()

    lazy = Document.load(path, mapped=True, verify="lazy")
    checked = lazy.verify_integrity()
    assert checked > 0
    assert registry.get("storage_crc_verifications_total").labels(mode="lazy").value == checked
    lazy.close()

    v1_path = tmp_path / "doc-v1.sxsi"
    with write_format(1):
        doc.save(v1_path)
    v1 = Document.load(v1_path)  # auto mode falls back to the copy reader
    assert registry.get("storage_v1_loads_total").value == 1
    v1.close()
    doc.close()


# -- residency and process resources ---------------------------------------------------


def test_process_resources_shape():
    resources = process_resources()
    assert set(resources) == {
        "rss_bytes",
        "max_rss_bytes",
        "minor_page_faults",
        "major_page_faults",
        "open_fds",
        "page_size",
    }
    assert resources["page_size"] > 0
    if resources["rss_bytes"] is not None:
        assert resources["rss_bytes"] > 0


@pytest.mark.skipif(not mincore_available(), reason="mincore is not available on this platform")
def test_mincore_residency_sanity(tmp_path):
    doc = Document.from_string(generate_xmark_xml(scale=0.01, seed=7))
    path = tmp_path / "resident.sxsi"
    doc.save(path)
    doc.close()
    loaded = Document.load(path, mapped=True)
    assert loaded.count("//item") > 0  # touch mapped pages
    residency = document_residency(loaded)
    assert residency is not None
    assert 0 < residency["resident_bytes"] <= residency["mapped_bytes"]
    assert residency["resident_pages"] <= residency["total_pages"]
    assert 0 < residency["resident_ratio"] <= 1.0
    assert residency["mapped_bytes"] == path.stat().st_size
    stats = loaded.stats()
    assert stats["storage"]["residency"]["resident_bytes"] > 0
    loaded.close()


@pytest.mark.skipif(not mincore_available(), reason="mincore is not available on this platform")
def test_store_mapped_residency_aggregates(tmp_path, registry):
    from repro.store.document_store import register_store_metrics

    builder = DocumentStore(tmp_path / "res", num_shards=2, cache_size=4)
    for doc_id in ("r1", "r2"):
        builder.add_xml(doc_id, generate_xmark_xml(scale=0.005, seed=3))
    builder.close()
    # add() leaves the just-built heap documents resident; a fresh store must
    # load from disk, which maps the v2 files.
    store = DocumentStore(tmp_path / "res", num_shards=2, cache_size=4, mapped=True)
    store.get("r1").count("//item")
    store.get("r2").count("//item")
    aggregate = store.mapped_residency()
    assert aggregate["available"] is True
    assert aggregate["documents"] == 2
    assert 0 < aggregate["resident_bytes"] <= aggregate["mapped_bytes"]
    assert set(aggregate["per_document"]) == {"r1", "r2"}
    register_store_metrics(store, registry)
    page = registry.render()
    parse_prometheus_text(page)
    assert "repro_store_mapped_resident_bytes" in page
    assert "repro_store_mapped_documents 2" in page


def test_heap_document_has_no_residency(tmp_path):
    doc = Document.from_string(SMALL_XML)
    path = tmp_path / "heap.sxsi"
    doc.save(path)
    loaded = Document.load(path, mapped=False)
    assert document_residency(loaded) is None
    assert "residency" not in loaded.stats()["storage"]
    loaded.close()
