"""Cross-validation: the succinct automaton engine versus the independent DOM engine.

Every published query set is evaluated by both engines over the synthetic
workloads; results must agree node-by-node (the DOM engine numbers nodes by
preorder, exactly like the succinct tree).  This is the strongest correctness
evidence in the suite: the two implementations share no evaluation code.
"""

from __future__ import annotations

import pytest

from repro import Document, EvaluationOptions, IndexOptions
from repro.workloads import MEDLINE_QUERIES, TREEBANK_QUERIES, XMARK_QUERIES


def preorders(document, query, options=None):
    return [document.tree.preorder(node) for node in document.query(query, options)]


#: The index configurations the whole query matrix is revalidated under (the
#: default configuration is what every other test in this module uses).
INDEX_CONFIGURATIONS = {
    "dense-sampling": IndexOptions(sample_rate=4),
    "no-plain-text": IndexOptions(keep_plain_text=False),
    "rlcsa": IndexOptions(text_index="rlcsa"),
    "tree-only": IndexOptions(text_index="none"),
}


@pytest.fixture(scope="module", params=sorted(INDEX_CONFIGURATIONS))
def xmark_document_matrix(request, xmark_model):
    """One indexed XMark document per non-default IndexOptions configuration."""
    return Document.from_model(xmark_model, INDEX_CONFIGURATIONS[request.param])


@pytest.fixture(scope="module", params=sorted(INDEX_CONFIGURATIONS))
def medline_document_matrix(request, medline_model):
    """One indexed Medline document per non-default IndexOptions configuration."""
    return Document.from_model(medline_model, INDEX_CONFIGURATIONS[request.param])


class TestXMarkQueries:
    @pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
    def test_counts_and_nodes_match_dom(self, name, xmark_document, xmark_dom):
        query = XMARK_QUERIES[name]
        assert preorders(xmark_document, query) == xmark_dom.preorders(query)

    @pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
    def test_counting_mode_matches_materialisation(self, name, xmark_document, xmark_dom):
        query = XMARK_QUERIES[name]
        assert xmark_document.count(query) == xmark_dom.count(query)


class TestTreebankQueries:
    @pytest.mark.parametrize("name", sorted(TREEBANK_QUERIES))
    def test_matches_dom(self, name, treebank_document, treebank_dom):
        query = TREEBANK_QUERIES[name]
        assert preorders(treebank_document, query) == treebank_dom.preorders(query)
        assert treebank_document.count(query) == treebank_dom.count(query)


class TestMedlineQueries:
    @pytest.mark.parametrize("name", sorted(set(MEDLINE_QUERIES) - {"M11"}))
    def test_matches_dom(self, name, medline_document, medline_dom):
        query = MEDLINE_QUERIES[name]
        assert preorders(medline_document, query) == medline_dom.preorders(query)

    def test_m11_newline_query_runs(self, medline_document, medline_dom):
        # M11 probes a string with newlines that the synthetic corpus does not
        # contain; both engines must simply agree (typically on zero results).
        query = MEDLINE_QUERIES["M11"]
        assert preorders(medline_document, query) == medline_dom.preorders(query)


class TestIndexOptionsMatrix:
    """The answers may never depend on how the document was indexed.

    Every published XMark query is revalidated against the DOM engine under
    each non-default :class:`IndexOptions` configuration (FM sampling, plain
    text dropped, RLCSA backend, tree-only indexing) -- the configurations
    change space/time, not results.
    """

    @pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
    def test_results_stable_across_index_options(self, name, xmark_document_matrix, xmark_dom):
        query = XMARK_QUERIES[name]
        assert preorders(xmark_document_matrix, query) == xmark_dom.preorders(query)
        assert xmark_document_matrix.count(query) == xmark_dom.count(query)

    @pytest.mark.parametrize("name", ["M02", "M05", "M09", "M10"])
    def test_medline_text_queries_stable_across_index_options(
        self, name, medline_document_matrix, medline_dom
    ):
        query = MEDLINE_QUERIES[name]
        assert preorders(medline_document_matrix, query) == medline_dom.preorders(query)


class TestOptimizationEquivalence:
    """Figure 12's ablation must not change results, only running time."""

    CONFIGURATIONS = {
        "naive": EvaluationOptions.naive(),
        "jumping-only": EvaluationOptions.naive().replace(jumping=True, use_tag_tables=True),
        "caching-only": EvaluationOptions.naive().replace(memoization=True),
        "no-lazy": EvaluationOptions().replace(lazy_result_sets=False),
        "no-early": EvaluationOptions().replace(early_evaluation=False),
        "all": EvaluationOptions(),
    }

    @pytest.mark.parametrize("name", ["X02", "X04", "X06", "X10", "X12", "X13", "X15"])
    def test_xmark_results_equal_across_configurations(self, name, xmark_document, xmark_dom):
        query = XMARK_QUERIES[name]
        expected = xmark_dom.preorders(query)
        for label, options in self.CONFIGURATIONS.items():
            got = preorders(xmark_document, query, options)
            assert got == expected, f"configuration {label} changed the result of {name}"

    @pytest.mark.parametrize("name", ["M02", "M05", "M09"])
    def test_bottom_up_equals_top_down(self, name, medline_document, medline_dom):
        query = MEDLINE_QUERIES[name]
        top_down = preorders(medline_document, query, EvaluationOptions(allow_bottom_up=False))
        default = preorders(medline_document, query)
        assert top_down == default == medline_dom.preorders(query)


class TestStatisticsSanity:
    def test_visited_nodes_bounded_by_document(self, xmark_document):
        result = xmark_document.evaluate(XMARK_QUERIES["X04"])
        stats = result.statistics
        assert 0 < stats.visited_nodes <= xmark_document.num_nodes
        assert stats.results == stats.result_nodes if hasattr(stats, "results") else True
        assert stats.result_nodes == result.count

    def test_jumping_visits_fewer_nodes(self, xmark_document):
        query = XMARK_QUERIES["X04"]
        with_jumping = xmark_document.evaluate(query, EvaluationOptions())
        without = xmark_document.evaluate(query, EvaluationOptions.naive())
        assert with_jumping.count == without.count
        assert with_jumping.statistics.visited_nodes <= without.statistics.visited_nodes

    def test_selective_query_visits_small_fraction(self, xmark_document):
        result = xmark_document.evaluate(XMARK_QUERIES["X03"], EvaluationOptions())
        assert result.statistics.visited_nodes < xmark_document.num_nodes / 2
