"""Tests for the succinct tree interface: navigation, tagged jumps, text links."""

from __future__ import annotations

import pytest

from repro.tree import NIL, PointerTree, SuccinctTree, TagPositionTables, TagSequence


@pytest.fixture(scope="module")
def tree(paper_example_model):
    model = paper_example_model
    return SuccinctTree(model.parens, model.node_tags, model.tag_names, model.text_leaf_positions)


class TestTagSequence:
    def test_basic(self):
        # positions: (a (b b) a) with tags a=0, b=1
        open_tags = [0, 1, -1, -1]
        closing = [-1, -1, 1, 0]
        tags = TagSequence(open_tags, 2, closing)
        assert tags.tag_at(0) == 0
        assert tags.tag_at(2) == -1
        assert tags.closing_tag_at(2) == 1
        assert tags.rank(1, 4) == 1
        assert tags.select(0, 1) == 0
        assert tags.next_occurrence(1, 0) == 1
        assert tags.prev_occurrence(0, 3) == 0
        assert tags.count(1) == 1
        assert tags.count_in_range(1, 0, 4) == 1

    def test_requires_closing_tags_when_needed(self):
        with pytest.raises(ValueError):
            TagSequence([0, -1], 1)

    def test_unknown_tag_queries(self):
        tags = TagSequence([0, -1], 1, [-1, 0])
        assert tags.rank(5, 2) == 0
        assert tags.next_occurrence(5, 0) == -1
        assert tags.occurrences(5).size == 0


class TestPaperExample:
    """The running example of Figure 1: 17 nodes, 6 texts."""

    def test_counts(self, tree):
        assert tree.num_nodes == 17
        assert tree.num_texts == 6
        assert tree.num_tags >= 8

    def test_root_and_document_element(self, tree):
        assert tree.tag_name_of(tree.root) == "&"
        parts = tree.first_child(tree.root)
        assert tree.tag_name_of(parts) == "parts"
        assert tree.parent(parts) == tree.root
        assert tree.parent(tree.root) == NIL

    def test_preorder_and_subtree_size(self, tree):
        assert tree.preorder(tree.root) == 1
        assert tree.subtree_size(tree.root) == 17
        parts = tree.first_child(tree.root)
        assert tree.subtree_size(parts) == 16
        assert tree.node_at_preorder(2) == parts

    def test_children_and_siblings(self, tree):
        parts = tree.first_child(tree.root)
        children = list(tree.children(parts))
        assert [tree.tag_name_of(c) for c in children] == ["part", "part"]
        part1, part2 = children
        assert tree.next_sibling(part1) == part2
        assert tree.next_sibling(part2) == NIL
        assert tree.is_ancestor(parts, part2)
        assert not tree.is_ancestor(part1, part2)

    def test_attribute_subtree_shape(self, tree):
        parts = tree.first_child(tree.root)
        part1 = tree.first_child(parts)
        at_node = tree.first_child(part1)
        assert tree.tag_name_of(at_node) == "@"
        name_node = tree.first_child(at_node)
        assert tree.tag_name_of(name_node) == "name"
        value_node = tree.first_child(name_node)
        assert tree.tag_name_of(value_node) == "%"
        assert tree.is_leaf(value_node)
        assert tree.is_text_leaf(value_node)

    def test_tagged_desc_and_foll(self, tree):
        parts = tree.first_child(tree.root)
        stock = tree.tag_id("stock")
        first_stock = tree.tagged_desc(parts, stock)
        assert tree.tag_name_of(first_stock) == "stock"
        second_stock = tree.tagged_foll(first_stock, stock)
        assert second_stock != NIL and second_stock != first_stock
        assert tree.tagged_foll(second_stock, stock) == NIL
        assert tree.tagged_desc(first_stock, stock) == NIL

    def test_tagged_foll_below_limit(self, tree):
        parts = tree.first_child(tree.root)
        part1 = tree.first_child(parts)
        stock = tree.tag_id("stock")
        first_stock = tree.tagged_desc(part1, stock)
        # The next stock is in the second part, outside part1's subtree.
        assert tree.tagged_foll_below(first_stock, stock, part1) == NIL
        assert tree.tagged_foll_below(first_stock, stock, parts) != NIL

    def test_tagged_prec(self, tree):
        stock = tree.tag_id("stock")
        color = tree.tag_id("color")
        second_stock = tree.tagged_nodes(stock)[1]
        prec = tree.tagged_prec(int(second_stock), color)
        assert tree.tag_name_of(prec) == "color"

    def test_subtree_tags(self, tree):
        parts = tree.first_child(tree.root)
        assert tree.subtree_tags(parts, tree.tag_id("stock")) == 2
        assert tree.subtree_tags(parts, tree.tag_id("color")) == 1
        part2 = tree.next_sibling(tree.first_child(parts))
        assert tree.subtree_tags(part2, tree.tag_id("color")) == 0

    def test_text_connections(self, tree, paper_example_model):
        texts = [t.decode() for t in paper_example_model.texts]
        # Each text leaf maps back to its identifier and vice versa.
        for text_id in range(tree.num_texts):
            node = tree.node_of_text(text_id)
            assert tree.is_text_leaf(node)
            assert tree.text_id_of_node(node) == text_id
            assert tree.xml_id_text(text_id) == tree.preorder(node)
        parts = tree.first_child(tree.root)
        first, last = tree.text_ids(parts)
        assert (first, last) == (0, tree.num_texts)
        part2 = tree.next_sibling(tree.first_child(parts))
        first2, last2 = tree.text_ids(part2)
        assert [texts[i] for i in range(first2, last2)] == ["rubber", "30"]

    def test_tag_name_mapping(self, tree):
        assert tree.tag_id("stock") >= 0
        assert tree.tag_id("nonexistent") == -1
        assert tree.tag_name(tree.tag_id("color")) == "color"
        assert tree.tag_count(tree.tag_id("part")) == 2
        assert tree.tag_count(-5) == 0

    def test_depth(self, tree):
        parts = tree.first_child(tree.root)
        assert tree.depth(tree.root) == 1
        assert tree.depth(parts) == 2

    def test_preorder_nodes_enumeration(self, tree):
        nodes = list(tree.preorder_nodes())
        assert len(nodes) == tree.num_nodes
        assert nodes[0] == tree.root
        assert all(nodes[i] < nodes[i + 1] for i in range(len(nodes) - 1))


class TestTagTables:
    def test_descendant_and_child_tables(self, tree):
        tables = TagPositionTables(tree)
        part = tree.tag_id("part")
        stock = tree.tag_id("stock")
        color = tree.tag_id("color")
        assert tables.occurs_as_descendant(part, stock)
        assert tables.occurs_as_child(part, stock)
        assert not tables.occurs_as_child(stock, part)
        assert not tables.is_recursive(part)
        assert tables.occurs_as_following_sibling(color, stock)
        assert not tables.occurs_as_following_sibling(stock, color)
        assert tables.occurs_as_following(color, stock)
        assert stock in tables.descendants_of(part)

    def test_out_of_range_tags(self, tree):
        tables = TagPositionTables(tree)
        assert not tables.occurs_as_descendant(999, 0)
        assert not tables.occurs_as_child(-1, 0)
        assert tables.descendants_of(999) == set()


class TestPointerTree:
    def test_matches_succinct_structure(self, paper_example_model, tree):
        model = paper_example_model
        pointer = PointerTree(model.parens, model.node_tags, model.tag_names)
        assert pointer.num_nodes == tree.num_nodes
        assert pointer.count_nodes() == tree.num_nodes
        part = pointer.tag_id("part")
        assert pointer.count_tag(part) == 2
        # Root's first child is 'parts', whose parent is the root.
        parts = pointer.first_child(pointer.root)
        assert pointer.tag_name_of(parts) == "parts"
        assert pointer.parent(parts) == pointer.root
        assert pointer.next_sibling(parts) == -1

    def test_preorder_traversal_order(self, xmark_model):
        pointer = PointerTree(xmark_model.parens, xmark_model.node_tags, xmark_model.tag_names)
        order = list(pointer.preorder_traversal())
        assert order == sorted(order)
        assert len(order) == xmark_model.num_nodes

    def test_size_larger_than_succinct(self, xmark_model):
        pointer = PointerTree(xmark_model.parens, xmark_model.node_tags, xmark_model.tag_names)
        succinct = SuccinctTree(
            xmark_model.parens, xmark_model.node_tags, xmark_model.tag_names, xmark_model.text_leaf_positions
        )
        # The pointer representation uses 2 machine words per node; the
        # parentheses structure alone is far smaller (the paper's Section 6.4).
        assert pointer.size_in_bits() > succinct.parentheses.size_in_bits() * 5
