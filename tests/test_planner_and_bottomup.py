"""Tests for the strategy planner and the bottom-up evaluator."""

from __future__ import annotations

import pytest

from repro import Document, EvaluationOptions
from repro.workloads import MEDLINE_QUERIES, MEDLINE_STRATEGY
from repro.xpath.planner import QueryPlanner
from repro.xpath.runtime import EvaluationStatistics, TextPredicateRuntime


@pytest.fixture(scope="module")
def articles():
    return Document.from_string(
        """
        <db>
          <article><title>Compressed Indexes</title><abstract>succinct structures for text search</abstract>
            <author><last>Navarro</last></author></article>
          <article><title>Streaming XPath</title><abstract>evaluation of xpath over streams</abstract>
            <author><last>Olteanu</last></author></article>
          <article><title>Tree Automata</title><abstract>marking automata for xpath evaluation</abstract>
            <author><last>Maneth</last></author></article>
          <article><title>Mixed</title><abstract>plain abstract text</abstract>
            <summary>one <b>two</b> three</summary>
            <author><last>Nobody</last></author></article>
        </db>
        """
    )


def plan_for(document, query, allow_bottom_up=True):
    stats = EvaluationStatistics()
    runtime = TextPredicateRuntime(document, stats)
    planner = QueryPlanner(document, runtime)
    return planner.plan(document.engine.parse(query), allow_bottom_up=allow_bottom_up)


class TestPlanner:
    def test_tree_only_query_is_top_down(self, articles):
        plan = plan_for(articles, "//article[author]")
        assert plan.strategy == "top-down"
        assert not plan.uses_fm_index

    def test_selective_text_predicate_goes_bottom_up(self, articles):
        plan = plan_for(articles, '//article[ .//abstract[ contains(., "streams") ] ]')
        assert plan.strategy == "bottom-up"
        assert plan.uses_fm_index
        assert plan.seed_estimate == 1

    def test_bottom_up_disabled_by_option(self, articles):
        plan = plan_for(articles, '//article[ .//abstract[ contains(., "streams") ] ]', allow_bottom_up=False)
        assert plan.strategy == "top-down"

    def test_intermediate_predicate_prevents_bottom_up(self, articles):
        plan = plan_for(articles, '//article[author]/abstract[contains(., "xpath")]')
        assert plan.strategy == "top-down"

    def test_or_of_text_predicates_is_anchored(self, articles):
        plan = plan_for(articles, '//abstract[ contains(., "streams") or contains(., "succinct") ]')
        assert plan.strategy == "bottom-up"
        assert plan.seed_estimate == 2

    def test_mixed_content_forces_naive(self, articles):
        plan = plan_for(articles, '//summary[ contains(., "one two") ]')
        assert plan.strategy == "top-down"
        assert plan.uses_naive_text

    def test_describe(self, articles):
        plan = plan_for(articles, '//abstract[ contains(., "streams") ]')
        assert "bottom-up" in plan.describe()

    def test_unselective_predicate_stays_top_down(self, articles):
        # "xpath" appears in as many abstracts as there are candidate articles.
        plan = plan_for(articles, '//abstract[ contains(., "a") ]')
        assert plan.strategy == "top-down"

    def test_every_plan_carries_a_cost_estimate(self, articles):
        for query in ("//article[author]", '//abstract[ contains(., "streams") ]'):
            plan = plan_for(articles, query)
            assert plan.estimated_cost is not None and plan.estimated_cost >= 1.0
            assert plan.cost is not None
            assert plan.cost.unit == "node-visits"


class TestSelectivityDecisionTable:
    """Pins the two ISSUE 9 blind-spot fixes as a decision table.

    Each case states the exact cardinalities the planner must derive and the
    strategy the ``seeds > candidates`` rule then mandates -- so a regression
    in either fix flips an explicit expectation, not just a timing.
    """

    @pytest.fixture(scope="class")
    def attribute_heavy(self):
        # 1 element, 5 attributes, 6 texts matching "e".  The wildcard last
        # step used to yield candidates=None, skipping the seeds>candidates
        # guard and locking in bottom-up; the element-count bound (1, after
        # excluding the attribute subtrees from the BP total) exposes that
        # seeds=6 > candidates=1 and forces top-down.
        return Document.from_string('<r a="he" b="we" c="ye" d="ze" e="qe">xe</r>')

    @pytest.fixture(scope="class")
    def overlapping(self):
        # Three abstracts; "select" matches two texts and its prefix "sel"
        # matches the same two.  Per-branch sums double-counted the overlap
        # (4 > 3 candidates -> bogus top-down); the union is 2 <= 3.
        return Document.from_string(
            "<articles>"
            "<abstract>rank and select</abstract>"
            "<abstract>select queries</abstract>"
            "<abstract>plain text</abstract>"
            "</articles>"
        )

    def test_wildcard_last_step_falls_back_to_element_bound(self, attribute_heavy):
        plan = plan_for(attribute_heavy, '//*[contains(text(), "e")]')
        assert plan.candidate_estimate == 1
        assert plan.seed_estimate == 6
        assert plan.strategy == "top-down"
        assert any("wildcard last step" in reason for reason in plan.reasons)

    def test_wildcard_fallback_result_is_correct(self, attribute_heavy):
        assert attribute_heavy.count('//*[contains(text(), "e")]') == 1

    def test_named_last_step_is_unaffected_by_fallback(self, attribute_heavy):
        plan = plan_for(attribute_heavy, '//r[contains(text(), "e")]')
        assert plan.candidate_estimate == 1
        assert not any("wildcard last step" in reason for reason in plan.reasons)

    def test_overlapping_disjunction_uses_seed_union(self, overlapping):
        plan = plan_for(overlapping, '//abstract[contains(., "select") or contains(., "sel")]')
        assert plan.seed_estimate == 2  # union, not the 2 + 2 per-branch sum
        assert plan.candidate_estimate == 3
        assert plan.strategy == "bottom-up"

    def test_overlapping_disjunction_result_is_correct(self, overlapping):
        assert overlapping.count('//abstract[contains(., "select") or contains(., "sel")]') == 2

    def test_disjoint_disjunction_still_sums(self, overlapping):
        plan = plan_for(overlapping, '//abstract[contains(., "rank") or contains(., "plain")]')
        assert plan.seed_estimate == 2
        assert plan.strategy == "bottom-up"


class TestBottomUpResults:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ('//article[ .//abstract[ contains(., "xpath") ] ]/title', 2),
            ('//abstract[ contains(., "succinct") ]', 1),
            ('//article[ .//last[ starts-with(., "M") ] ]', 1),
            ('//article[ .//abstract[ ends-with(., "search") ] ]', 1),
            ('//last[ . = "Navarro" ]', 1),
        ],
    )
    def test_counts(self, articles, query, expected):
        assert articles.count(query) == expected
        top_down = articles.count(query, EvaluationOptions(allow_bottom_up=False))
        assert top_down == expected

    def test_bottom_up_strategy_recorded(self, articles):
        result = articles.evaluate('//abstract[ contains(., "streams") ]')
        assert result.plan.strategy == "bottom-up"
        assert result.statistics.strategy == "bottom-up"

    def test_child_spine_verification(self, articles):
        # The spine uses child steps; the upward verification must enforce them.
        assert articles.count('/db/article/abstract[contains(., "streams")]') == 1
        assert articles.count('/db/wrong/abstract[contains(., "streams")]') == 0


class TestPaperStrategyAnnotations:
    """Figure 14 annotates each Medline query with its expected strategy."""

    @pytest.mark.parametrize("name", sorted(MEDLINE_STRATEGY))
    def test_strategy_annotation(self, name, medline_document):
        query = MEDLINE_QUERIES[name]
        expected_strategy, expected_text = MEDLINE_STRATEGY[name]
        result = medline_document.evaluate(query, want_nodes=False)
        if expected_strategy == "bottom-up":
            # The planner may still fall back to top-down when the synthetic
            # corpus makes the predicate unselective; it must never do the
            # opposite (bottom-up where the paper says it is impossible).
            assert result.plan.strategy in ("bottom-up", "top-down")
        else:
            assert result.plan.strategy == "top-down"
        if expected_text == "naive":
            assert result.plan.uses_naive_text or not result.plan.uses_fm_index
