"""Round-trip and integrity tests for the binary codec of every structure."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.bits.bitvector import BitVector
from repro.bits.intarray import PackedIntArray
from repro.bits.sparse import SparseBitVector
from repro.core.errors import CorruptedFileError, StorageError, VersionMismatchError
from repro.sequence.huffman import HuffmanCode
from repro.sequence.runlength import RunLengthSequence
from repro.sequence.wavelet_tree import WaveletTree
from repro.storage.codec import FORMAT_VERSION, MAGIC, ChunkReader, ChunkWriter, peek_kind
from repro.text.fm_index import FMIndex
from repro.text.naive_text import NaiveTextCollection
from repro.text.rlcsa import RLCSAIndex
from repro.text.suffix_array import read_suffix_array, suffix_array_of_bytes, write_suffix_array
from repro.text.text_collection import TextCollection
from repro.text.word_index import WordTextIndex
from repro.tree.balanced_parens import BalancedParentheses
from repro.tree.succinct_tree import SuccinctTree
from repro.tree.tag_sequence import TagSequence
from repro.tree.tag_tables import TagPositionTables

TEXTS = [b"hello world", b"worldly goods", b"", b"banana band", b"hello"]


# -- low-level codec ---------------------------------------------------------------------


def test_chunk_round_trip_all_types():
    buffer = io.BytesIO()
    writer = ChunkWriter(buffer)
    writer.header("Test")
    writer.int("INT_", -42)
    writer.json("JSON", {"a": [1, 2], "b": "x"})
    writer.bytes("BYTE", b"\x00\xff")
    writer.array("ARRY", np.arange(12, dtype=np.int64).reshape(3, 4))
    writer.bytes_list("LIST", [b"", b"abc", b"\x00"])
    buffer.seek(0)
    reader = ChunkReader(buffer)
    assert reader.header("Test") == "Test"
    assert reader.int("INT_") == -42
    assert reader.json("JSON") == {"a": [1, 2], "b": "x"}
    assert reader.bytes("BYTE") == b"\x00\xff"
    assert np.array_equal(reader.array("ARRY"), np.arange(12).reshape(3, 4))
    assert reader.bytes_list("LIST") == [b"", b"abc", b"\x00"]


def test_bad_magic_is_corruption():
    data = b"NOPE" + b"\x00" * 16
    with pytest.raises(CorruptedFileError, match="magic"):
        ChunkReader(io.BytesIO(data)).header()


def test_version_mismatch_is_typed():
    buffer = io.BytesIO()
    ChunkWriter(buffer).header("Test")
    raw = bytearray(buffer.getvalue())
    raw[len(MAGIC)] = FORMAT_VERSION + 1  # bump the little-endian version field
    with pytest.raises(VersionMismatchError, match="version"):
        ChunkReader(io.BytesIO(bytes(raw))).header()


def test_wrong_kind_is_corruption():
    data = BitVector([1, 0, 1]).to_bytes()
    with pytest.raises(CorruptedFileError, match="payload"):
        PackedIntArray.from_bytes(data)


def test_truncated_file_is_corruption():
    data = BitVector(np.ones(500, dtype=bool)).to_bytes()
    with pytest.raises(CorruptedFileError, match="truncated"):
        BitVector.from_bytes(data[: len(data) // 2])


def test_bit_flip_fails_checksum():
    data = bytearray(BitVector(np.ones(500, dtype=bool)).to_bytes())
    data[-3] ^= 0xFF  # flip bits inside the last chunk's payload
    with pytest.raises(CorruptedFileError):
        BitVector.from_bytes(bytes(data))


def test_errors_are_storage_errors():
    assert issubclass(CorruptedFileError, StorageError)
    assert issubclass(VersionMismatchError, StorageError)


def test_peek_kind():
    assert peek_kind(BitVector([1]).to_bytes()) == "BitVector"
    assert peek_kind(RLCSAIndex([b"AC"]).to_bytes()) == "RLCSAIndex"


# -- bits layer ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 1000])
def test_bitvector_round_trip(n):
    rng = np.random.default_rng(n)
    original = BitVector(rng.integers(0, 2, n).astype(bool))
    loaded = BitVector.from_bytes(original.to_bytes())
    assert loaded == original
    assert loaded.count_ones == original.count_ones
    for i in range(0, n, 7):
        assert loaded.rank1(i) == original.rank1(i)
    if original.count_ones:
        assert loaded.select1(original.count_ones) == original.select1(original.count_ones)


def test_bitvector_rejects_dirty_padding_bits():
    buffer = io.BytesIO()
    writer = ChunkWriter(buffer)
    writer.header("BitVector")
    writer.int("NBIT", 3)
    writer.array("WORD", np.array([0xFFFF_FFFF_FFFF_FFFF], dtype=np.uint64))
    with pytest.raises(CorruptedFileError, match="beyond its length"):
        BitVector.from_bytes(buffer.getvalue())


def test_balanced_parens_rejects_wrong_sized_max_directory():
    original = BalancedParentheses("()" * 100)
    buffer = io.BytesIO()
    writer = ChunkWriter(buffer)
    writer.header("BalancedParentheses")
    writer.chunk("BITV", BitVector(original.to_numpy()).to_bytes())
    writer.array("BMIN", np.zeros((200 + 63) // 64, dtype=np.int64))
    writer.array("BMAX", np.zeros(0, dtype=np.int64))  # wrong size
    writer.array("SMIN", np.zeros(1, dtype=np.int64))
    writer.array("SMAX", np.zeros(1, dtype=np.int64))
    with pytest.raises(CorruptedFileError, match="directory"):
        BalancedParentheses.from_bytes(buffer.getvalue())


def test_sparse_bitvector_round_trip():
    original = SparseBitVector([3, 17, 900], 1000)
    loaded = SparseBitVector.from_bytes(original.to_bytes())
    assert list(loaded.positions()) == [3, 17, 900]
    assert len(loaded) == 1000
    assert loaded.rank1(18) == 2
    assert loaded.next_one(18) == 900


def test_sparse_bitvector_rejects_unsorted_positions():
    data = bytearray(SparseBitVector([3, 17], 100).to_bytes())
    # Corrupt the positions payload while keeping the checksum valid is not
    # possible; instead check the semantic validation path directly.
    buffer = io.BytesIO()
    writer = ChunkWriter(buffer)
    writer.header("SparseBitVector")
    writer.int("NBIT", 100)
    writer.array("ONES", np.array([17, 3], dtype=np.int64))
    with pytest.raises(CorruptedFileError, match="increasing"):
        SparseBitVector.from_bytes(buffer.getvalue())
    assert data  # silences the unused-variable lint


@pytest.mark.parametrize("width", [1, 7, 10, 33, 64])
def test_packed_int_array_round_trip(width):
    rng = np.random.default_rng(width)
    values = rng.integers(0, 2 ** min(width, 62), 200, dtype=np.uint64)
    original = PackedIntArray(values, width=width)
    loaded = PackedIntArray.from_bytes(original.to_bytes())
    assert loaded == original
    assert loaded.to_list() == original.to_list()


# -- sequence layer -----------------------------------------------------------------------


def test_huffman_code_round_trip():
    original = HuffmanCode({1: 5, 2: 9, 7: 1, 300: 2})
    loaded = HuffmanCode.from_bytes(original.to_bytes())
    assert loaded.codebook() == original.codebook()
    assert loaded.symbols == original.symbols


@pytest.mark.parametrize("data", [b"", b"aaaa", b"abracadabra" * 50])
def test_wavelet_tree_round_trip(data):
    original = WaveletTree(data)
    loaded = WaveletTree.from_bytes(original.to_bytes())
    assert loaded.to_list() == original.to_list()
    assert loaded.alphabet == original.alphabet
    for symbol in original.alphabet:
        assert loaded.rank(symbol, len(data) // 2) == original.rank(symbol, len(data) // 2)
        assert loaded.select(symbol, 1) == original.select(symbol, 1)


@pytest.mark.parametrize("data", [b"", b"z", b"aaabbbbccaaa", b"ACGT" * 100])
def test_run_length_sequence_round_trip(data):
    original = RunLengthSequence(data)
    loaded = RunLengthSequence.from_bytes(original.to_bytes())
    assert loaded.to_list() == original.to_list()
    assert loaded.num_runs == original.num_runs
    for symbol in original.alphabet:
        assert loaded.rank(symbol, len(data)) == original.rank(symbol, len(data))


# -- tree layer ---------------------------------------------------------------------------


def test_balanced_parens_round_trip():
    original = BalancedParentheses("((()())(()))")
    loaded = BalancedParentheses.from_bytes(original.to_bytes())
    assert str(loaded) == str(original)
    for i in range(len(original)):
        if original.is_open(i):
            assert loaded.find_close(i) == original.find_close(i)
            assert loaded.enclose(i) == original.enclose(i)


def test_succinct_tree_and_tag_structures_round_trip(paper_example_model):
    model = paper_example_model
    original = SuccinctTree(model.parens, model.node_tags, model.tag_names, model.text_leaf_positions)
    loaded = SuccinctTree.from_bytes(original.to_bytes())
    assert loaded.num_nodes == original.num_nodes
    assert loaded.num_texts == original.num_texts
    assert loaded.tag_names() == original.tag_names()
    assert loaded.text_leaf_positions() == sorted(int(p) for p in model.text_leaf_positions)
    node = original.first_child(original.root)
    assert loaded.subtree_size(node) == original.subtree_size(node)

    tags = TagSequence.from_bytes(original.tag_sequence.to_bytes())
    assert all(tags.tag_at(i) == original.tag_sequence.tag_at(i) for i in range(len(tags)))

    tables = TagPositionTables(original)
    loaded_tables = TagPositionTables.from_bytes(tables.to_bytes())
    for tag in range(original.num_tags):
        assert loaded_tables.descendants_of(tag) == tables.descendants_of(tag)
        assert loaded_tables.is_recursive(tag) == tables.is_recursive(tag)
    assert loaded_tables.size_in_bits() == tables.size_in_bits()


# -- text layer ---------------------------------------------------------------------------


def test_fm_index_round_trip():
    original = FMIndex(TEXTS, sample_rate=4)
    loaded = FMIndex.from_bytes(original.to_bytes())
    assert loaded.count(b"world") == original.count(b"world")
    assert list(loaded.locate(b"an")) == list(original.locate(b"an"))
    assert loaded.extract_all() == TEXTS
    assert loaded.sample_rate == original.sample_rate


def test_fm_index_with_run_length_sequence_round_trip():
    original = FMIndex([b"ACACAC", b"ACACGT"], sample_rate=2, sequence_factory=RunLengthSequence)
    loaded = FMIndex.from_bytes(original.to_bytes())
    assert loaded.count(b"CA") == original.count(b"CA")
    assert loaded.extract_all() == [b"ACACAC", b"ACACGT"]


@pytest.mark.parametrize("keep_plain", [True, False])
def test_text_collection_round_trip(keep_plain):
    original = TextCollection(TEXTS, sample_rate=4, keep_plain_text=keep_plain)
    loaded = TextCollection.from_bytes(original.to_bytes())
    assert type(loaded) is TextCollection
    assert (loaded.plain is None) == (not keep_plain)
    for pattern in (b"world", b"hello", b"an"):
        assert list(loaded.contains(pattern)) == list(original.contains(pattern))
        assert list(loaded.starts_with(pattern)) == list(original.starts_with(pattern))
        assert loaded.global_count(pattern) == original.global_count(pattern)
    assert loaded.get_text(3) == TEXTS[3]


def test_rlcsa_round_trip_revives_subclass():
    original = RLCSAIndex([b"ACACAC", b"ACACGT", b"ACACAC"])
    loaded = TextCollection.from_bytes(original.to_bytes())
    assert type(loaded) is RLCSAIndex
    assert loaded.num_runs == original.num_runs
    assert list(loaded.equals(b"ACACAC")) == list(original.equals(b"ACACAC"))


def test_naive_text_collection_round_trip():
    original = NaiveTextCollection(TEXTS)
    loaded = NaiveTextCollection.from_bytes(original.to_bytes())
    assert [loaded.get_text(i) for i in range(len(TEXTS))] == TEXTS


def test_word_index_round_trip():
    original = WordTextIndex([b"the quick brown fox", b"the lazy dog", b"quick quick"])
    loaded = WordTextIndex.from_bytes(original.to_bytes())
    assert list(loaded.contains(b"quick")) == list(original.contains(b"quick"))
    assert loaded.global_count(b"the") == original.global_count(b"the")
    assert loaded.vocabulary_size == original.vocabulary_size
    assert loaded.words_of(0) == original.words_of(0)


def test_suffix_array_round_trip_and_validation():
    sa = suffix_array_of_bytes(b"mississippi")
    buffer = io.BytesIO()
    write_suffix_array(buffer, sa)
    buffer.seek(0)
    assert np.array_equal(read_suffix_array(buffer), sa)

    buffer = io.BytesIO()
    writer = ChunkWriter(buffer)
    writer.header("SuffixArray")
    writer.array("SUFA", np.array([0, 0, 2], dtype=np.int64))
    buffer.seek(0)
    with pytest.raises(CorruptedFileError, match="permutation"):
        read_suffix_array(buffer)
