"""Tests for the Document facade and the index options."""

from __future__ import annotations

import pytest

from repro import Document, EvaluationOptions, IndexOptions, UnsupportedQueryError
from repro.text.pssm import PositionWeightMatrix
from repro.workloads import generate_bio_xml, jaspar_like_matrices
from repro.xpath.compiler import QueryCompiler
from repro.xpath.parser import parse_xpath


class TestConstruction:
    def test_from_string_and_file(self, tmp_path):
        xml = "<a><b>x</b></a>"
        from_string = Document.from_string(xml)
        path = tmp_path / "doc.xml"
        path.write_text(xml)
        from_file = Document.from_file(path)
        assert from_string.count("//b") == from_file.count("//b") == 1

    def test_from_model(self, xmark_model):
        doc = Document.from_model(xmark_model)
        assert doc.num_nodes == xmark_model.num_nodes
        assert doc.num_texts == xmark_model.num_texts

    def test_index_options_sample_rate(self):
        xml = "<a><b>hello world</b><b>hello there</b></a>"
        fast = Document.from_string(xml, IndexOptions(sample_rate=4))
        slow = Document.from_string(xml, IndexOptions(sample_rate=64))
        assert fast.count('//b[contains(., "hello")]') == slow.count('//b[contains(., "hello")]') == 2

    def test_no_plain_text_store(self):
        doc = Document.from_string("<a><b>needle in text</b></a>", IndexOptions(keep_plain_text=False))
        assert doc.text_collection.plain is None
        assert doc.count('//b[contains(., "needle")]') == 1
        assert doc.serialize("//b") == ["<b>needle in text</b>"]

    def test_rlcsa_text_index(self):
        doc = Document.from_string(
            "<g><seq>ACGTACGTACGT</seq><seq>ACGTACGTACGT</seq></g>", IndexOptions(text_index="rlcsa")
        )
        assert doc.count('//seq[contains(., "GTAC")]') == 2

    def test_word_index_option(self):
        doc = Document.from_string(
            "<d><t>the quick brown fox</t><t>a brown dog</t></d>", IndexOptions(word_index=True)
        )
        assert doc.word_index is not None
        doc.word_semantics = True
        assert doc.count('//t[contains(., "brown")]') == 2
        # Word semantics: substrings that are not whole words do not match.
        assert doc.count('//t[contains(., "row")]') == 0
        doc.word_semantics = False
        assert doc.count('//t[contains(., "row")]') == 2

    def test_options_replace(self):
        options = IndexOptions().replace(sample_rate=8)
        assert options.sample_rate == 8
        run = EvaluationOptions().replace(jumping=False)
        assert not run.jumping and run.memoization


class TestStatisticsAndSizes:
    def test_index_size_report(self, xmark_document):
        sizes = xmark_document.index_size_bits()
        assert set(sizes) == {"tree", "text_index", "plain_text", "total"}
        assert sizes["total"] == sizes["tree"] + sizes["text_index"] + sizes["plain_text"]
        assert sizes["tree"] > 0 and sizes["text_index"] > 0

    def test_tag_counts(self, paper_example_document):
        counts = paper_example_document.tag_counts()
        assert counts["part"] == 2
        assert counts["stock"] == 2
        assert counts["&"] == 1

    def test_node_path(self, paper_example_document):
        doc = paper_example_document
        stock = doc.query("//stock")[0]
        assert doc.node_path(stock) == "/&/parts/part/stock"

    def test_preorder_ids(self, paper_example_document):
        doc = paper_example_document
        nodes = doc.query("//part")
        assert doc.preorder_ids(nodes) == [doc.tree.preorder(n) for n in nodes]


class TestTextAccess:
    def test_get_text_and_string_value(self, paper_example_document):
        doc = paper_example_document
        assert doc.get_text(0) == "pen"
        part2 = doc.query("//part")[1]
        assert doc.string_value(part2) == "rubber30"

    def test_is_pcdata_only(self, small_site_document):
        doc = small_site_document
        assert doc.is_pcdata_only("keyword")
        assert doc.is_pcdata_only("name")
        assert not doc.is_pcdata_only("text")  # mixed content in listitem text
        assert doc.is_pcdata_only("not-a-tag")

    def test_match_text_predicate_kinds(self, small_site_document):
        doc = small_site_document
        assert doc.match_text_predicate("contains", "rare").size == 1
        assert doc.match_text_predicate("starts-with", "Ali").size == 1
        assert doc.match_text_predicate("ends-with", "5").size == 1
        assert doc.match_text_predicate("equals", "Bob").size == 1
        with pytest.raises(ValueError):
            doc.match_text_predicate("unknown", "x")


class TestPssmRegistry:
    def test_register_and_query(self):
        matrices = jaspar_like_matrices()
        doc = Document.from_string(generate_bio_xml(num_genes=4, promoter_length=80, exon_length=40))
        matrix = matrices["M1"]
        doc.register_pssm("M1", matrix, threshold=matrix.max_score() - 4.0)
        count = doc.count("//promoter[ PSSM(., M1) ]")
        assert count >= 0
        assert doc.count("//promoter") >= count

    def test_threshold_override(self):
        doc = Document.from_string("<g><s>ACGTACGT</s></g>")
        matrix = PositionWeightMatrix.from_counts([[9, 0, 0, 0], [0, 9, 0, 0], [0, 0, 9, 0], [0, 0, 0, 9]])
        doc.register_pssm("M", matrix, threshold=matrix.max_score() + 100)
        assert doc.count("//s[PSSM(., M)]") == 0
        assert doc.count(f"//s[PSSM(., M, {matrix.max_score() - 1.0})]") == 1

    def test_unregistered_matrix_raises(self):
        doc = Document.from_string("<g><s>ACGT</s></g>")
        with pytest.raises(KeyError):
            doc.count("//s[PSSM(., UNKNOWN)]")


class TestErrors:
    def test_unsupported_query_surfaces(self, paper_example_document):
        path = parse_xpath("//part")
        relative = path.__class__(steps=path.steps, absolute=False)
        with pytest.raises(UnsupportedQueryError):
            QueryCompiler(list(paper_example_document.tree.tag_names())).compile(relative)

    def test_self_filters_now_supported(self, paper_example_document):
        # '//part[self::color]' used to raise; self filters are resolved by
        # label-class splitting now and agree with plain name selection.
        assert paper_example_document.count("//part[self::color]") == 0
        assert paper_example_document.count("//*[self::part]") == paper_example_document.count("//part")
