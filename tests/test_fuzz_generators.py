"""The fuzz generators: determinism, validity, rejection consistency, shrinking."""

from __future__ import annotations

import random

import pytest

from repro import Document, EvaluationOptions, UnsupportedQueryError
from repro.baseline import DomEngine
from repro.fuzz import (
    FuzzCase,
    XmlGenConfig,
    generate_query,
    generate_unsupported_query,
    generate_xml,
    shrink_case,
)
from repro.fuzz.shrink import unparse_path
from repro.xmlmodel import build_model
from repro.xpath.parser import XPathSyntaxError, parse_xpath

TAGS = ("a", "b", "item", "name")
TEXTS = ("red pen", "gold", "")


class TestDeterminism:
    def test_same_seed_same_document(self):
        assert generate_xml(123) == generate_xml(123)
        assert generate_xml(123) != generate_xml(124)

    def test_same_seed_same_query(self):
        assert generate_query(7, TAGS, TEXTS) == generate_query(7, TAGS, TEXTS)

    def test_same_seed_same_unsupported_query(self):
        assert generate_unsupported_query(7, TAGS) == generate_unsupported_query(7, TAGS)

    def test_rng_stream_is_reproducible(self):
        # One shared Random drawn from repeatedly must yield the same
        # *sequence* of (distinct) documents as an identically seeded stream.
        rng_a, rng_b = random.Random(5), random.Random(5)
        first = [generate_xml(rng_a) for _ in range(4)]
        second = [generate_xml(rng_b) for _ in range(4)]
        assert first == second
        assert len(set(first)) > 1


class TestValidity:
    @pytest.mark.parametrize("seed", range(40))
    def test_generated_xml_reparses_and_indexes(self, seed):
        xml = generate_xml(seed, XmlGenConfig(max_depth=6))
        model = build_model(xml)
        assert model.num_nodes >= 1
        # And the same bytes survive the document pipeline.
        document = Document.from_model(model)
        assert document.num_nodes == model.num_nodes

    @pytest.mark.parametrize("seed", range(60))
    def test_generated_queries_parse(self, seed):
        query = generate_query(seed, TAGS, TEXTS)
        path = parse_xpath(query)
        assert path.absolute and path.steps

    @pytest.mark.parametrize("seed", range(60))
    def test_unparse_round_trips(self, seed):
        # One unparse may rename an ImpossibleTest (contradictory self fold,
        # which has no surface syntax); after that the text/AST round trip is
        # exact -- which is the property the shrinker's reductions rely on.
        path = parse_xpath(unparse_path(parse_xpath(generate_query(seed, TAGS, TEXTS))))
        assert parse_xpath(unparse_path(path)) == path


class TestRejectionConsistency:
    """Unsupported syntax must raise the same error in every evaluation path."""

    @pytest.mark.parametrize("seed", range(60))
    def test_compiler_and_bottomup_paths_reject_identically(self, seed):
        query = generate_unsupported_query(seed, TAGS)
        document = Document.from_string("<a><b>red pen</b></a>")
        dom = DomEngine(build_model("<a><b>red pen</b></a>"))
        outcomes = {}
        for label, call in {
            "parser": lambda: parse_xpath(query),
            "dom": lambda: dom.preorders(query),
            "compiler": lambda: document.query(query, EvaluationOptions(allow_bottom_up=False)),
            "bottomup": lambda: document.query(query, EvaluationOptions(allow_bottom_up=True)),
            "counting": lambda: document.count(query),
        }.items():
            with pytest.raises((XPathSyntaxError, UnsupportedQueryError)) as excinfo:
                call()
            outcomes[label] = type(excinfo.value).__name__
        assert len(set(outcomes.values())) == 1, f"inconsistent rejection: {outcomes}"


class TestShrinker:
    def test_injected_failure_shrinks_to_a_tiny_repro(self):
        # An artificial failure: any document holding a 'k' element together
        # with any query naming 'k'.  The shrinker must strip everything else.
        xml = f"<r>{generate_xml(11, XmlGenConfig(max_depth=5))}<k>needle</k></r>"
        assert "<k" in xml and build_model(xml).num_nodes > 20
        query = "//a//k[contains(., 'x') or b]/node()"
        case = FuzzCase(xml=xml, query=query)

        def fails(candidate: FuzzCase) -> bool:
            try:
                model = build_model(candidate.xml)
                parse_xpath(candidate.query)
            except Exception:
                return False
            return "k" in set(model.tag_names) and "k" in candidate.query

        assert fails(case)
        shrunk = shrink_case(case, fails)
        assert fails(shrunk)
        assert build_model(shrunk.xml).num_nodes <= 5
        assert len(parse_xpath(shrunk.query).steps) <= 3

    def test_real_disagreement_predicate_shrinks(self):
        # Drive the shrinker with the actual oracle on a historical bug shape:
        # perturb the fixed bottom-up attribute case into a large document and
        # require the shrinker to cut it down while the query keeps selecting.
        xml = '<r><x><name id="b">pad</name></x><y>filler</y><z a="1">more</z></r>'
        case = FuzzCase(xml=xml, query='//name[contains(., "pad")]')

        def selects(candidate: FuzzCase) -> bool:
            try:
                model = build_model(candidate.xml)
                document = Document.from_model(model)
                return document.count(candidate.query) >= 1
            except Exception:
                return False

        shrunk = shrink_case(case, selects)
        assert selects(shrunk)
        assert build_model(shrunk.xml).num_nodes < build_model(xml).num_nodes
