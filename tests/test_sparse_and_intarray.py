"""Tests for the sparse bit vector (sarray) and the packed integer array."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import PackedIntArray, SparseBitVector


class TestSparseBitVector:
    def test_basic_rank_select(self):
        sv = SparseBitVector([2, 5, 9], 12)
        assert len(sv) == 12
        assert sv.count_ones == 3
        assert sv.rank1(0) == 0
        assert sv.rank1(3) == 1
        assert sv.rank1(12) == 3
        assert sv.select1(1) == 2
        assert sv.select1(3) == 9

    def test_membership(self):
        sv = SparseBitVector([1, 4], 6)
        assert [sv[i] for i in range(6)] == [0, 1, 0, 0, 1, 0]

    def test_from_dense(self):
        sv = SparseBitVector.from_dense([0, 1, 1, 0, 1])
        assert sv.count_ones == 3
        assert sv.positions().tolist() == [1, 2, 4]

    def test_next_prev_one(self):
        sv = SparseBitVector([3, 8], 10)
        assert sv.next_one(0) == 3
        assert sv.next_one(4) == 8
        assert sv.next_one(9) == -1
        assert sv.prev_one(9) == 8
        assert sv.prev_one(2) == -1

    def test_count_in_range(self):
        sv = SparseBitVector([1, 3, 5, 7], 10)
        assert sv.count_in_range(2, 6) == 2
        assert sv.count_in_range(0, 10) == 4
        assert sv.count_in_range(6, 2) == 0

    def test_rejects_out_of_range_and_duplicates(self):
        with pytest.raises(ValueError):
            SparseBitVector([10], 5)
        with pytest.raises(ValueError):
            SparseBitVector([1, 1], 5)

    def test_select_out_of_range(self):
        with pytest.raises(ValueError):
            SparseBitVector([1], 5).select1(2)

    @given(st.sets(st.integers(min_value=0, max_value=300), max_size=60), st.integers(min_value=301, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_rank_select_match_dense_model(self, positions, length):
        sv = SparseBitVector(sorted(positions), length)
        dense = [1 if i in positions else 0 for i in range(length)]
        for i in range(0, length + 1, 13):
            assert sv.rank1(i) == sum(dense[:i])
        for j, position in enumerate(sorted(positions), start=1):
            assert sv.select1(j) == position


class TestPackedIntArray:
    def test_roundtrip_default_width(self):
        values = [0, 5, 1023, 7, 512]
        arr = PackedIntArray(values)
        assert arr.to_list() == values
        assert arr.width == 10

    def test_roundtrip_explicit_width(self):
        values = [1, 2, 3]
        arr = PackedIntArray(values, width=20)
        assert list(arr) == values

    def test_cross_word_boundaries(self):
        values = list(range(100))
        arr = PackedIntArray(values, width=7)
        assert arr.to_list() == values

    def test_width_validation(self):
        with pytest.raises(ValueError):
            PackedIntArray([8], width=3)
        with pytest.raises(ValueError):
            PackedIntArray([1], width=0)

    def test_index_errors(self):
        arr = PackedIntArray([1, 2, 3])
        with pytest.raises(IndexError):
            arr[3]
        assert arr[-1] == 3

    def test_equality_and_hash(self):
        assert PackedIntArray([1, 2], width=4) == PackedIntArray([1, 2], width=4)
        assert PackedIntArray([1, 2], width=4) != PackedIntArray([1, 3], width=4)
        assert hash(PackedIntArray([9], width=5)) == hash(PackedIntArray([9], width=5))

    def test_empty(self):
        arr = PackedIntArray([])
        assert len(arr) == 0
        assert arr.to_list() == []

    @given(st.lists(st.integers(min_value=0, max_value=2**17 - 1), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = PackedIntArray(values, width=17)
        assert arr.to_list() == values

    def test_to_numpy(self):
        values = [4, 9, 16]
        assert PackedIntArray(values).to_numpy().tolist() == values
