"""Cost model, pre-flight estimation and admission control (ISSUE 9).

Covers the layers bottom-up: the :mod:`repro.xpath.cost` arithmetic, the
engine's evaluation-free ``plan()`` / EXPLAIN export, the service's
corpus-scaled ``estimate_cost``, the :class:`AdmissionController` decision
logic (with an injected clock), and the HTTP surface -- the
``/v1/query/estimate`` route plus the acceptance criterion: a query exceeding
the configured cost budget gets a **429 with a cost hint** in the error
envelope, before any evaluation starts.
"""

from __future__ import annotations

import pytest

from repro import Document, EvaluationOptions
from repro.client import ReproClient
from repro.obs.counters import PLANNER_COUNTERS
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.workload import WorkloadAnalytics, set_workload
from repro.server.admission import AdmissionController
from repro.server.http import ReproServer
from repro.server.json_api import ApiError, error_payload, exception_from_payload
from repro.service.query_service import QueryService
from repro.store.document_store import DocumentStore
from repro.xpath.cost import (
    CostEstimate,
    element_candidate_bound,
    estimate_plan_costs,
    use_batch_kernels,
)

XML = (
    "<site>"
    "<item><name>gold ring</name>fine</item>"
    "<item><name>tin can</name>plain</item>"
    "<item><name>gold coin</name>rare</item>"
    "</site>"
)


@pytest.fixture(scope="module")
def document():
    return Document.from_string(XML)


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


# -- cost arithmetic -------------------------------------------------------------------


class TestCostModel:
    def test_element_bound_excludes_specials(self, document):
        # 3 items + 3 names + site = 7 elements; texts/attrs/root excluded.
        assert element_candidate_bound(document.tree) == 7

    def test_element_bound_excludes_attribute_interiors(self):
        doc = Document.from_string('<r a="he" b="we" c="ye" d="ze" e="qe">xe</r>')
        assert element_candidate_bound(doc.tree) == 1

    def test_estimates_are_positive_and_monotone(self, document):
        narrow = document.engine.plan("//item/name")
        wide = document.engine.plan("//*")
        assert narrow.estimated_cost >= 1.0
        assert wide.estimated_cost >= narrow.estimated_cost

    def test_for_strategy_and_as_dict(self):
        estimate = CostEstimate(top_down=100.0, bottom_up=10.0, result=5, depth=3)
        assert estimate.for_strategy("bottom-up") == 10.0
        assert estimate.for_strategy("top-down") == 100.0
        data = estimate.as_dict()
        assert data["unit"] == "node-visits"
        assert data["result_estimate"] == 5
        assert data["depth_hint"] == 3

    def test_anchored_estimate_prefers_bottom_up_for_selective_seeds(self, document):
        prepared = document.engine.prepare('//item[contains(., "gold")]')
        cost = estimate_plan_costs(
            document.tree, prepared.ast, seeds=2, candidates=3, num_text_predicates=1
        )
        assert cost.bottom_up is not None
        assert cost.bottom_up >= 1.0

    def test_batch_kernel_choice(self):
        assert use_batch_kernels("bottom-up", seeds=None, num_nodes=10**6)
        assert use_batch_kernels("bottom-up", seeds=10_000, num_nodes=10**6)
        assert not use_batch_kernels("bottom-up", seeds=3, num_nodes=10**6)
        assert use_batch_kernels("top-down", seeds=None, num_nodes=10**6)
        assert not use_batch_kernels("top-down", seeds=None, num_nodes=50)

    def test_tiny_document_downgrades_to_scalar_without_changing_results(self, document):
        # The whole document is far below both cutoffs, so plans downgrade to
        # scalar kernels -- and counts must match the batch-forced run.
        plan = document.engine.plan('//item[contains(., "gold")]')
        assert not plan.use_batch_kernels
        batch = document.count('//item[contains(., "gold")]', EvaluationOptions(batch_kernels=True))
        scalar = document.count('//item[contains(., "gold")]', EvaluationOptions(batch_kernels=False))
        assert batch == scalar == 2


class TestEnginePlanExport:
    def test_plan_method_does_not_evaluate(self, document):
        plan = document.engine.plan("//item")
        assert plan.strategy == "top-down"
        assert plan.estimated_cost is not None
        assert plan.result_estimate == 3

    def test_plan_as_dict_carries_costs(self, document):
        data = document.engine.plan('//item[contains(., "gold")]').as_dict()
        assert data["estimated_cost"] is not None
        assert data["costs"]["unit"] == "node-visits"
        assert "use_batch_kernels" in data

    def test_explain_reports_estimated_cost(self, document):
        record = document.engine.explain_data("//item/name")
        assert record["estimated_cost"] is not None
        assert record["plan"]["estimated_cost"] == record["estimated_cost"]

    def test_planner_counters_accumulate(self, document):
        before = PLANNER_COUNTERS.snapshot()
        fresh = Document.from_string(XML)  # fresh plan cache -> guaranteed misses
        fresh.engine.plan("//item")
        fresh.engine.plan('//*[contains(text(), "gold")]')
        delta = PLANNER_COUNTERS.delta_since(before)
        assert delta["plans_total"] >= 2
        assert delta["wildcard_candidate_fallbacks_total"] >= 1
        assert delta["estimated_cost_total"] > 0


# -- service-level estimation ----------------------------------------------------------


class TestServiceEstimate:
    @pytest.fixture()
    def service(self, tmp_path):
        store = DocumentStore(tmp_path / "est", num_shards=4, cache_size=2)
        for i in range(5):
            store.add_xml(f"doc-{i}", XML)
        svc = QueryService(store, max_workers=1)
        yield svc
        svc.close()
        store.close()

    def test_estimate_scales_by_corpus_size(self, service):
        report = service.estimate_cost(["//item"])
        assert report["num_documents"] == 5
        (entry,) = report["queries"]
        assert entry["total_cost"] == pytest.approx(entry["per_document_cost"] * 5)
        assert report["total_cost"] == entry["total_cost"]

    def test_estimate_respects_doc_ids(self, service):
        full = service.estimate_cost(["//item"])
        narrowed = service.estimate_cost(["//item"], doc_ids=["doc-0", "doc-1"])
        assert narrowed["num_documents"] == 2
        assert narrowed["total_cost"] < full["total_cost"]

    def test_duplicate_queries_charged_once(self, service):
        once = service.estimate_cost(["//item"])
        twice = service.estimate_cost(["//item", "//item"])
        assert twice["total_cost"] == once["total_cost"]
        assert len(twice["queries"]) == 2

    def test_estimate_on_empty_corpus_is_zero(self, tmp_path):
        store = DocumentStore(tmp_path / "empty", num_shards=2)
        service = QueryService(store)
        report = service.estimate_cost(["//item"])
        assert report["num_documents"] == 0
        assert report["total_cost"] == 0.0
        assert report["representative"] is None

    def test_malformed_query_raises_before_reporting(self, service):
        with pytest.raises(Exception):
            service.estimate_cost(["//item["])

    def test_workload_reports_estimated_vs_actual(self, service):
        fresh = WorkloadAnalytics()
        previous = set_workload(fresh)
        try:
            service.run_many(["//item", "//item/name"])
            shapes = fresh.snapshot()["shapes"]
        finally:
            set_workload(previous)
        assert shapes, "run_many should record shapes"
        for shape in shapes:
            assert "estimated_cost" in shape
            assert shape["estimated_cost"]["total"] > 0
            assert shape["estimated_cost"]["estimated_vs_actual"] is not None


# -- admission controller --------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmissionController:
    def test_disabled_controller_admits_everything(self, registry):
        controller = AdmissionController(registry=registry)
        assert not controller.enabled
        release = controller.admit("anyone", 10**12)
        release()

    def test_over_budget_is_429_with_cost_hint(self, registry):
        controller = AdmissionController(cost_budget=100.0, registry=registry)
        with pytest.raises(ApiError) as excinfo:
            controller.admit("c1", 250.0)
        assert excinfo.value.status == 429
        assert excinfo.value.details == {"estimated_cost": 250.0, "cost_budget": 100.0}
        controller.admit("c1", 100.0)()  # at the budget is still admitted

    def test_quota_token_bucket_refills(self, registry):
        clock = FakeClock()
        controller = AdmissionController(
            client_cost_quota=100.0, quota_window_seconds=10.0, clock=clock, registry=registry
        )
        controller.admit("c1", 80.0)()
        with pytest.raises(ApiError) as excinfo:
            controller.admit("c1", 80.0)
        assert excinfo.value.status == 429
        details = excinfo.value.details
        assert details["retry_after_seconds"] == pytest.approx(6.0)
        assert details["remaining_quota"] == pytest.approx(20.0)
        clock.advance(6.0)  # refill rate is 10/s -> 20 + 60 = 80 tokens
        controller.admit("c1", 80.0)()
        # Other clients have independent buckets.
        controller.admit("c2", 100.0)()

    def test_inflight_ceiling_is_503_but_idle_always_admits(self, registry):
        controller = AdmissionController(max_inflight_cost=100.0, registry=registry)
        # A single over-ceiling request is admitted when nothing is inflight.
        big_release = controller.admit("c1", 500.0)
        with pytest.raises(ApiError) as excinfo:
            controller.admit("c2", 1.0)
        assert excinfo.value.status == 503
        assert excinfo.value.details["max_inflight_cost"] == 100.0
        big_release()
        assert controller.inflight_cost == 0.0
        controller.admit("c2", 1.0)()

    def test_release_is_idempotent(self, registry):
        controller = AdmissionController(max_inflight_cost=100.0, registry=registry)
        release = controller.admit("c1", 40.0)
        release()
        release()
        assert controller.inflight_cost == 0.0

    def test_bounded_client_table_evicts_stalest(self, registry):
        clock = FakeClock()
        controller = AdmissionController(
            client_cost_quota=10.0, quota_window_seconds=10.0, max_clients=2, clock=clock, registry=registry
        )
        controller.admit("a", 10.0)()
        clock.advance(0.1)
        controller.admit("b", 10.0)()
        clock.advance(0.1)
        controller.admit("c", 10.0)()  # evicts "a", the stalest bucket
        # "a" returns with a fresh bucket instead of its drained one.
        controller.admit("a", 10.0)()

    def test_describe_previews_budget(self, registry):
        controller = AdmissionController(cost_budget=100.0, registry=registry)
        assert controller.describe(cost=50.0)["would_admit"] is True
        assert controller.describe(cost=150.0)["would_admit"] is False


# -- error envelope --------------------------------------------------------------------


def test_details_round_trip_through_error_envelope():
    original = ApiError(429, "over budget", error_type="over_budget", details={"cost_budget": 10.0})
    payload = error_payload(original, request_id="r1")
    assert payload["error"]["details"] == {"cost_budget": 10.0}
    rebuilt = exception_from_payload(429, payload)
    assert isinstance(rebuilt, ApiError)
    assert rebuilt.status == 429
    assert rebuilt.details == {"cost_budget": 10.0}


# -- HTTP surface ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("admission-store")
    store = DocumentStore(root, num_shards=4, cache_size=4)
    for i in range(6):
        store.add_xml(f"doc-{i}", XML)
    store.close()
    return root


class TestHttpAdmission:
    @pytest.fixture()
    def server(self, corpus):
        service = QueryService(DocumentStore(corpus, cache_size=4), max_workers=2)
        admission = AdmissionController(cost_budget=0.5, client_cost_quota=10**9)
        with ReproServer(service, admission=admission) as srv:
            yield srv
        service.close()

    def test_over_budget_query_gets_429_with_cost_hint(self, server):
        """ISSUE 9 acceptance: early 429 + cost hint instead of a timeout."""
        client = ReproClient(*server.address)
        with pytest.raises(ApiError) as excinfo:
            client.run("//item")
        assert excinfo.value.status == 429
        details = excinfo.value.details
        assert details is not None
        assert details["cost_budget"] == 0.5
        assert details["estimated_cost"] > 0.5

    def test_batch_endpoint_is_also_guarded(self, server):
        client = ReproClient(*server.address)
        with pytest.raises(ApiError) as excinfo:
            client.run_many(["//item", "//item/name"])
        assert excinfo.value.status == 429

    def test_narrowed_request_fits_the_budget(self, server):
        # The hint is actionable: restricting doc_ids shrinks the estimate.
        client = ReproClient(*server.address)
        estimate = client.estimate_cost("//b", doc_ids=["doc-0"])
        assert estimate["num_documents"] == 1
        if estimate["total_cost"] <= 0.5:
            result = client.run("//b", doc_ids=["doc-0"])
            assert result.total == 0

    def test_estimate_endpoint_never_evaluates(self, server):
        client = ReproClient(*server.address)
        estimate = client.estimate_cost(["//item", '//item[contains(., "gold")]'])
        assert estimate["num_documents"] == 6
        assert estimate["total_cost"] > 0
        assert {q["query"] for q in estimate["queries"]} == {
            "//item",
            '//item[contains(., "gold")]',
        }
        assert estimate["admission"]["enabled"] is True
        assert estimate["admission"]["would_admit"] is False  # over the tiny budget

    def test_estimate_endpoint_validates_queries(self, server):
        client = ReproClient(*server.address)
        with pytest.raises(Exception):
            client.estimate_cost("//item[")


class TestHttpQuota:
    def test_quota_exhaustion_by_client_id(self, corpus):
        service = QueryService(DocumentStore(corpus, cache_size=4), max_workers=2)
        probe = QueryService(DocumentStore(corpus, cache_size=4), max_workers=1)
        per_request = probe.estimate_cost(["//item"])["total_cost"]
        probe.close()
        admission = AdmissionController(
            client_cost_quota=per_request * 1.5, quota_window_seconds=3600.0
        )
        with ReproServer(service, admission=admission) as server:
            limited = ReproClient(*server.address, client_id="limited")
            other = ReproClient(*server.address, client_id="other")
            assert limited.run("//item").total == 18
            with pytest.raises(ApiError) as excinfo:
                limited.run("//item")  # second request exceeds 1.5x quota
            assert excinfo.value.status == 429
            assert excinfo.value.details["retry_after_seconds"] > 0
            # A different client id has its own bucket.
            assert other.run("//item").total == 18
        service.close()

    def test_unconfigured_server_admits_everything(self, corpus):
        service = QueryService(DocumentStore(corpus, cache_size=4), max_workers=2)
        with ReproServer(service) as server:
            client = ReproClient(*server.address)
            assert client.run("//item").total == 18
            estimate = client.estimate_cost("//item")
            assert estimate["admission"]["enabled"] is False
        service.close()


def test_serve_cli_builds_admission_controller(tmp_path):
    from repro.server.__main__ import build_parser

    args = build_parser().parse_args(
        [
            "--root",
            str(tmp_path),
            "--cost-budget",
            "5000",
            "--client-cost-quota",
            "100000",
            "--quota-window",
            "30",
            "--max-inflight-cost",
            "20000",
        ]
    )
    assert args.cost_budget == 5000.0
    assert args.client_cost_quota == 100000.0
    assert args.quota_window == 30.0
    assert args.max_inflight_cost == 20000.0
