"""The serving layer: prepared plans, the plan cache and QueryService."""

from __future__ import annotations

import pytest

from repro import (
    Document,
    DocumentFailure,
    DocumentStore,
    IndexOptions,
    PlanCache,
    QueryService,
    ReproError,
    prepare_query,
)
from repro.workloads import generate_treebank_xml, generate_xmark_xml

XMARK_QUERIES = [
    "//item",
    "//item/name",
    '//item[contains(., "gold")]',
    "//people/person",
]
TREEBANK_QUERIES = [
    "//NP",
    "//S//VP",
    "//NP/PP",
]


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A mixed XMark + Treebank store: two tag tables, ten documents."""
    store = DocumentStore(tmp_path_factory.mktemp("corpus"), num_shards=8, cache_size=3)
    for i in range(6):
        store.add_xml(f"xmark-{i}", generate_xmark_xml(scale=0.01, seed=50 + i), IndexOptions(sample_rate=16))
    for i in range(4):
        xml = generate_treebank_xml(num_sentences=6, max_depth=7, seed=80 + i)
        store.add_xml(f"treebank-{i}", xml, IndexOptions(sample_rate=16))
    return store


# -- PreparedQuery ------------------------------------------------------------------------


def test_prepared_query_shares_bindings_across_equal_tag_tables():
    plan = prepare_query("//b")
    doc_a = Document.from_string("<a><b>x</b></a>")
    doc_b = Document.from_string("<a><b>y</b><b>x</b></a>")  # same tag table
    doc_c = Document.from_string("<root><b>x</b><c/></root>")  # different table
    assert doc_a.count(plan) == 1
    assert doc_b.count(plan) == 2
    assert plan.num_bindings == 1
    assert doc_c.count(plan) == 1
    assert plan.num_bindings == 2


def test_prepared_query_matches_string_path_everywhere():
    doc = Document.from_string("<a><b>hello</b><b>world</b></a>")
    plan = doc.prepare("//b")
    assert doc.count(plan) == doc.count("//b")
    assert doc.query(plan) == doc.query("//b")
    assert doc.serialize(plan) == doc.serialize("//b")
    assert doc.evaluate(plan).count == 2
    assert "query: //b" in doc.explain(plan)


# -- PlanCache ----------------------------------------------------------------------------


def test_plan_cache_does_not_share_across_index_options():
    cache = PlanCache(capacity=8)
    default = cache.get("//a", IndexOptions())
    rlcsa = cache.get("//a", IndexOptions(text_index="rlcsa"))
    assert default is not rlcsa
    info = cache.info()
    assert info["misses"] == 2 and info["entries"] == 2
    # Same (query, options) pair hits; None normalises to the default options.
    assert cache.get("//a", IndexOptions()) is default
    assert cache.get("//a") is default
    assert cache.info()["hits"] == 2


def test_plan_cache_lru_eviction_and_passthrough():
    cache = PlanCache(capacity=2)
    first = cache.get("//a")
    cache.get("//b")
    cache.get("//c")  # evicts //a
    assert cache.info()["evictions"] == 1
    assert cache.get("//a") is not first  # re-parsed after eviction
    prepared = prepare_query("//d")
    assert cache.get(prepared) is prepared  # caller-owned plans bypass the cache
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# -- QueryService: correctness ------------------------------------------------------------


def test_parallel_equals_sequential_on_xmark_and_treebank(corpus):
    parallel = QueryService(corpus, max_workers=4)
    sequential = QueryService(corpus, max_workers=1)
    for query in XMARK_QUERIES + TREEBANK_QUERIES:
        expected = corpus.count_all(query)
        par = parallel.run(query, want_nodes=True)
        seq = sequential.run(query, want_nodes=True)
        assert par.counts == expected, query
        assert seq.counts == expected, query
        assert par.nodes == seq.nodes, query
        assert par.total == sum(expected.values())
        assert not par.failures
    # One binding per *distinct* tag table, never one per document.
    tables = {tuple(corpus.get(doc_id).tree.tag_names()) for doc_id in corpus.doc_ids()}
    plan = parallel.plan_cache.get(XMARK_QUERIES[0], IndexOptions(sample_rate=16))
    assert 1 <= plan.num_bindings <= len(tables)


def test_service_nodes_match_store_query(corpus):
    service = QueryService(corpus, max_workers=4)
    result = service.run("//NP", want_nodes=True)
    for doc_id in corpus.doc_ids():
        assert result.nodes[doc_id] == corpus.query(doc_id, "//NP"), doc_id


def test_service_doc_subset_and_timings(corpus):
    service = QueryService(corpus, max_workers=2)
    subset = ["xmark-0", "treebank-0"]
    result = service.run("//*", doc_ids=subset)
    assert sorted(result.counts) == sorted(subset)
    assert sum(t.num_documents for t in result.shard_timings) == 2
    assert result.slowest_shard in result.shard_timings
    assert result.elapsed_seconds > 0


def test_run_many_groups_queries_and_matches_individual_runs(corpus):
    service = QueryService(corpus, max_workers=4)
    batch = service.run_many(["//item", "//NP", "//item"])
    assert len(batch) == 3
    assert batch[0].counts == batch[2].counts == service.run("//item").counts
    assert batch[1].counts == service.run("//NP").counts
    # The duplicate text was one job: the batch parsed two plans, not three.
    assert service.plan_cache.info()["entries"] >= 2


def test_run_many_empty_inputs(corpus):
    service = QueryService(corpus, max_workers=2)
    assert service.run_many([]) == []
    result = service.run("//item", doc_ids=[])
    assert result.counts == {} and result.total == 0


def test_service_process_executor(corpus):
    with QueryService(corpus, max_workers=2, executor="process") as service:
        expected = corpus.count_all("//item")
        assert service.run("//item").counts == expected
        # Warm workers answer again without re-forking (persistent pools).
        assert service.run("//item").counts == expected
    assert service.total_count("//NP", doc_ids=["treebank-0"]) > 0  # pool recreated after close


def test_service_validates_configuration(corpus):
    with pytest.raises(ValueError):
        QueryService(corpus, max_workers=0)
    with pytest.raises(ValueError):
        QueryService(corpus, executor="fiber")
    with pytest.raises(ValueError):
        corpus.scatter_gather(lambda _, d: 0, on_error="ignore")


def test_malformed_query_fails_the_call_not_the_workers(corpus):
    service = QueryService(corpus, max_workers=4)
    with pytest.raises(ValueError):
        service.run("//item[")


# -- failure surfacing --------------------------------------------------------------------


def _corrupt(store: DocumentStore, doc_id: str) -> None:
    path = store.root / f"shard-{store.shard_of(doc_id):03d}" / f"{doc_id}.sxsi"
    path.write_bytes(b"garbage" * 16)


def test_service_surfaces_corrupt_documents_as_failures(tmp_path):
    store = DocumentStore(tmp_path / "store", num_shards=4, cache_size=2)
    for i in range(4):
        store.add_xml(f"doc-{i}", f"<doc><n>{i}</n></doc>")
    _corrupt(store, "doc-2")
    fresh = DocumentStore(tmp_path / "store")  # cold cache so the corruption is hit
    service = QueryService(fresh, max_workers=2)
    result = service.run("//n")
    assert sorted(result.counts) == ["doc-0", "doc-1", "doc-3"]
    assert [f.doc_id for f in result.failures] == ["doc-2"]
    assert result.failures[0].error == "CorruptedFileError"
    with pytest.raises(ReproError, match="doc-2"):
        result.raise_failures()


def test_scatter_gather_collects_structured_failures(tmp_path):
    store = DocumentStore(tmp_path / "store", num_shards=4, cache_size=2)
    for i in range(3):
        store.add_xml(f"doc-{i}", f"<doc><n>{i}</n></doc>")
    _corrupt(store, "doc-1")
    fresh = DocumentStore(tmp_path / "store")
    results = fresh.count_all("//n", on_error="collect")
    assert results["doc-0"] == 1 and results["doc-2"] == 1
    failure = results["doc-1"]
    assert isinstance(failure, DocumentFailure)
    assert failure.error == "CorruptedFileError" and "doc-1" in str(failure)
    # The default still aborts, preserving the PR-1 semantics.
    with pytest.raises(ReproError):
        DocumentStore(tmp_path / "store").count_all("//n")


def test_resident_documents_are_revalidated_after_overwrite(tmp_path):
    store = DocumentStore(tmp_path / "store", num_shards=2, cache_size=4)
    store.add_xml("doc", "<r><x>old</x></r>")
    other_view = DocumentStore(tmp_path / "store")  # e.g. a process worker's view
    assert other_view.serialize("doc", "//x") == ["<x>old</x>"]  # now resident there
    store.add_xml("doc", "<r><x>new</x><x>two</x></r>", overwrite=True)
    assert other_view.serialize("doc", "//x") == ["<x>new</x>", "<x>two</x>"]
    service = QueryService(other_view, max_workers=2)
    assert service.run("//x").counts == {"doc": 2}


def test_plan_cache_shares_parsed_ast_across_option_keys():
    cache = PlanCache(capacity=8)
    default = cache.get("//a/b")
    rlcsa = cache.get("//a/b", IndexOptions(text_index="rlcsa"))
    assert rlcsa is not default  # distinct entries per IndexOptions...
    assert rlcsa.ast is default.ast  # ...but the parse is shared


# -- shard iteration ----------------------------------------------------------------------


def test_iter_shards_partitions_the_corpus(corpus):
    shards = corpus.iter_shards()
    seen = [doc_id for _, members in shards for doc_id in members]
    assert sorted(seen) == corpus.doc_ids()
    for shard, members in shards:
        assert members == sorted(members)
        assert all(corpus.shard_of(doc_id) == shard for doc_id in members)
    subset = corpus.iter_shards(["xmark-0", "xmark-1"])
    assert sorted(d for _, m in subset for d in m) == ["xmark-0", "xmark-1"]
