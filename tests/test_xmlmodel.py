"""Tests for the XML parser, the SXSI document model and serialisation."""

from __future__ import annotations

import pytest

from repro import Document
from repro.xmlmodel import ParseError, build_model, parse_events, serialize_subtree, serialize_text
from repro.xmlmodel.model import ModelBuilder
from repro.xmlmodel.parser import Characters, EndElement, StartElement
from repro.tree import SuccinctTree


class TestParser:
    def test_simple_document(self):
        events = list(parse_events("<a><b>hi</b></a>"))
        assert events == [
            StartElement("a"),
            StartElement("b"),
            Characters("hi"),
            EndElement("b"),
            EndElement("a"),
        ]

    def test_attributes_both_quote_styles(self):
        events = list(parse_events("<a x=\"1\" y='two'/>"))
        assert events[0] == StartElement("a", (("x", "1"), ("y", "two")))
        assert events[1] == EndElement("a")

    def test_self_closing(self):
        events = list(parse_events("<a><b/><c/></a>"))
        names = [e.name for e in events if isinstance(e, StartElement)]
        assert names == ["a", "b", "c"]

    def test_entities_and_numeric_references(self):
        events = list(parse_events("<a>&amp;&lt;&gt;&quot;&apos;&#65;&#x42;</a>"))
        assert events[1] == Characters("&<>\"'AB")

    def test_unknown_entity_raises(self):
        with pytest.raises(ParseError):
            list(parse_events("<a>&nope;</a>"))

    def test_cdata_comments_pi_doctype(self):
        xml = (
            "<?xml version='1.0'?><!DOCTYPE a SYSTEM 'x.dtd'><a><!-- note -->"
            "<![CDATA[1 < 2 & 3]]><?target data?></a>"
        )
        events = list(parse_events(xml))
        assert Characters("1 < 2 & 3") in events

    def test_mismatched_tags(self):
        with pytest.raises(ParseError):
            list(parse_events("<a><b></a></b>"))

    def test_unclosed_element(self):
        with pytest.raises(ParseError):
            list(parse_events("<a><b></b>"))

    def test_multiple_roots(self):
        with pytest.raises(ParseError):
            list(parse_events("<a/><b/>"))

    def test_text_outside_root(self):
        with pytest.raises(ParseError):
            list(parse_events("boom<a/>"))

    def test_bytes_input(self):
        events = list(parse_events(b"<a>caf\xc3\xa9</a>"))
        assert events[1] == Characters("café")


class TestModelBuilder:
    def test_paper_example_counts(self, paper_example_model):
        model = paper_example_model
        assert model.num_nodes == 17
        assert model.num_texts == 6
        assert [t.decode() for t in model.texts] == ["pen", "blue", "40", "Soon discontinued.", "rubber", "30"]
        assert model.tag_names[:4] == ["&", "#", "@", "%"]

    def test_whitespace_dropped_by_default(self):
        model = build_model("<a>\n  <b>x</b>\n</a>")
        assert [t.decode() for t in model.texts] == ["x"]

    def test_whitespace_kept_on_request(self):
        model = build_model("<a>\n  <b>x</b>\n</a>", keep_whitespace=True)
        assert len(model.texts) == 3

    def test_empty_texts_never_stored(self):
        model = build_model("<a><b></b></a>")
        assert model.texts == []
        assert model.num_nodes == 3  # &, a, b

    def test_adjacent_text_chunks_merged(self):
        model = build_model("<a>one &amp; two</a>")
        assert [t.decode() for t in model.texts] == ["one & two"]

    def test_builder_event_api(self):
        builder = ModelBuilder()
        builder.start_document()
        builder.start_element("doc", [("lang", "en")])
        builder.start_element("p")
        builder.characters("hello")
        builder.end_element()
        builder.end_element()
        model = builder.end_document()
        assert model.num_texts == 2  # the attribute value and the text
        assert "doc" in model.tag_names and "lang" in model.tag_names

    def test_builder_validates_balance(self):
        builder = ModelBuilder()
        builder.start_document()
        builder.start_element("a")
        with pytest.raises(ValueError):
            builder.end_document()

    def test_source_bytes_recorded(self):
        xml = "<a>x</a>"
        assert build_model(xml).source_bytes == len(xml)


class TestSerializer:
    def _tree_and_texts(self, xml: str):
        model = build_model(xml)
        tree = SuccinctTree(model.parens, model.node_tags, model.tag_names, model.text_leaf_positions)
        texts = [t.decode() for t in model.texts]
        return tree, (lambda i: texts[i])

    def test_roundtrip_simple(self):
        xml = '<part name="pen"><color>blue</color><stock>40</stock>Soon discontinued.</part>'
        tree, get_text = self._tree_and_texts(f"<parts>{xml}</parts>")
        parts = tree.first_child(tree.root)
        part = tree.first_child(parts)
        assert serialize_subtree(tree, get_text, part) == xml

    def test_root_serialisation(self):
        xml = "<a><b>x</b><c/></a>"
        tree, get_text = self._tree_and_texts(xml)
        assert serialize_subtree(tree, get_text, tree.root) == xml

    def test_escaping(self):
        tree, get_text = self._tree_and_texts('<a v="x&amp;y">1 &lt; 2 &amp; 3</a>')
        output = serialize_subtree(tree, get_text, tree.root)
        assert output == '<a v="x&amp;y">1 &lt; 2 &amp; 3</a>'

    def test_string_value(self):
        tree, get_text = self._tree_and_texts("<a>one<b>two</b>three</a>")
        assert serialize_text(tree, get_text, tree.root) == "onetwothree"

    def test_document_serialize_matches(self, small_site_document):
        doc = small_site_document
        outputs = doc.serialize("//keyword")
        assert outputs == ["<keyword>red</keyword>", "<keyword>blue</keyword>", "<keyword>rare</keyword>"]

    def test_document_string_value(self, paper_example_document):
        doc = paper_example_document
        parts = doc.tree.first_child(doc.tree.root)
        assert doc.string_value(parts) == "penblue40Soon discontinued.rubber30"


class TestDocumentRoundtrip:
    @pytest.mark.parametrize(
        "xml",
        [
            "<a/>",
            "<a>text</a>",
            "<a><b>x</b><b>y</b></a>",
            '<a id="1"><b k="v">x</b></a>',
            "<root><x>1</x><y><z>deep</z></y></root>",
        ],
    )
    def test_parse_index_serialize(self, xml):
        doc = Document.from_string(xml)
        assert doc.serialize_node(doc.tree.root) == xml
