"""Shared fixtures: small documents and workload samples used across the suite."""

from __future__ import annotations

import pytest

from repro import Document
from repro.baseline import DomEngine
from repro.workloads import (
    generate_bio_xml,
    generate_medline_xml,
    generate_treebank_xml,
    generate_wiki_xml,
    generate_xmark_xml,
)
from repro.xmlmodel import build_model

PAPER_EXAMPLE_XML = (
    '<parts><part name="pen"><color>blue</color><stock>40</stock>Soon discontinued.</part>'
    '<part name="rubber"><stock>30</stock></part></parts>'
)

SMALL_SITE_XML = """
<site>
 <regions><europe><item id="i1"><name>Pen</name><description><parlist><listitem><text>nice
 <keyword>red</keyword> pen with <emph>gold</emph> trim</text></listitem><listitem><keyword>blue</keyword>
 </listitem></parlist></description></item></europe>
  <asia><item id="i2"><name>Rubber</name><description>Soon discontinued</description></item></asia>
 </regions>
 <people>
  <person id="p0"><name>Alice</name><phone>123</phone><profile><gender>female</gender><age>30</age></profile><watches/></person>
  <person id="p1"><name>Bob</name><homepage>http://b.example</homepage><address>Street 5</address></person>
  <person id="p2"><name>Carol</name><creditcard>999</creditcard></person>
 </people>
 <closed_auctions>
  <closed_auction><annotation><description><text><keyword>rare</keyword></text></description></annotation><date>01/01/2000</date></closed_auction>
  <closed_auction><annotation><description><text>plain</text></description></annotation><date>02/02/2000</date></closed_auction>
 </closed_auctions>
</site>
"""


@pytest.fixture(scope="session")
def paper_example_model():
    return build_model(PAPER_EXAMPLE_XML)


@pytest.fixture(scope="session")
def paper_example_document():
    return Document.from_string(PAPER_EXAMPLE_XML)


@pytest.fixture(scope="session")
def small_site_document():
    return Document.from_string(SMALL_SITE_XML)


@pytest.fixture(scope="session")
def small_site_model():
    return build_model(SMALL_SITE_XML)


@pytest.fixture(scope="session")
def xmark_xml():
    return generate_xmark_xml(scale=0.2, seed=3)


@pytest.fixture(scope="session")
def xmark_model(xmark_xml):
    return build_model(xmark_xml)


@pytest.fixture(scope="session")
def xmark_document(xmark_model):
    return Document.from_model(xmark_model)


@pytest.fixture(scope="session")
def xmark_dom(xmark_model):
    return DomEngine(xmark_model)


@pytest.fixture(scope="session")
def medline_xml():
    return generate_medline_xml(num_citations=60, seed=5)


@pytest.fixture(scope="session")
def medline_model(medline_xml):
    return build_model(medline_xml)


@pytest.fixture(scope="session")
def medline_document(medline_model):
    return Document.from_model(medline_model)


@pytest.fixture(scope="session")
def medline_dom(medline_model):
    return DomEngine(medline_model)


@pytest.fixture(scope="session")
def treebank_xml():
    return generate_treebank_xml(num_sentences=40, max_depth=9, seed=2)


@pytest.fixture(scope="session")
def treebank_document(treebank_xml):
    return Document.from_string(treebank_xml)


@pytest.fixture(scope="session")
def treebank_dom(treebank_xml):
    return DomEngine(build_model(treebank_xml))


@pytest.fixture(scope="session")
def wiki_xml():
    return generate_wiki_xml(num_pages=60, seed=9)


@pytest.fixture(scope="session")
def bio_xml():
    return generate_bio_xml(num_genes=8, promoter_length=120, exon_length=60, seed=4)
