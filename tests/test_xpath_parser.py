"""Tests for the XPath Core+ parser."""

from __future__ import annotations

import pytest

from repro.workloads import MEDLINE_QUERIES, TREEBANK_QUERIES, WIKI_QUERIES, XMARK_QUERIES
from repro.xpath.ast import (
    AndExpr,
    Axis,
    NameTest,
    NodeTypeTest,
    NotExpr,
    OrExpr,
    PathExpr,
    PssmPredicate,
    TextPredicate,
    TextTest,
    WildcardTest,
)
from repro.xpath.parser import XPathSyntaxError, parse_xpath


class TestBasicPaths:
    def test_child_steps(self):
        path = parse_xpath("/site/regions")
        assert path.absolute
        assert [s.axis for s in path.steps] == [Axis.CHILD, Axis.CHILD]
        assert [s.test.name for s in path.steps] == ["site", "regions"]

    def test_descendant_abbreviation(self):
        path = parse_xpath("//listitem//keyword")
        assert [s.axis for s in path.steps] == [Axis.DESCENDANT, Axis.DESCENDANT]

    def test_mixed_abbreviation(self):
        path = parse_xpath("//a/b")
        assert [s.axis for s in path.steps] == [Axis.DESCENDANT, Axis.CHILD]

    def test_explicit_axes(self):
        path = parse_xpath("/descendant::listitem/child::keyword")
        assert [s.axis for s in path.steps] == [Axis.DESCENDANT, Axis.CHILD]

    def test_wildcard_text_node_tests(self):
        path = parse_xpath("/descendant::*/child::text()/child::node()")
        assert isinstance(path.steps[0].test, WildcardTest)
        assert isinstance(path.steps[1].test, TextTest)
        assert isinstance(path.steps[2].test, NodeTypeTest)

    def test_text_as_element_name(self):
        path = parse_xpath("//text/keyword")
        assert isinstance(path.steps[0].test, NameTest)
        assert path.steps[0].test.name == "text"

    def test_attribute_abbreviation(self):
        path = parse_xpath("//person[@id]/name")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, PathExpr)
        assert predicate.path.steps[0].axis is Axis.ATTRIBUTE

    def test_describe(self):
        assert parse_xpath("//a").describe() == "/descendant::a"


class TestPredicates:
    def test_boolean_structure(self):
        path = parse_xpath("/a[b and (c or not(d))]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, AndExpr)
        assert isinstance(predicate.right, OrExpr)
        assert isinstance(predicate.right.right, NotExpr)

    def test_relative_path_predicate(self):
        path = parse_xpath("/a[b/c]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, PathExpr)
        assert [s.test.name for s in predicate.path.steps] == ["b", "c"]

    def test_dot_descendant_predicate(self):
        path = parse_xpath("/a[.//keyword]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, PathExpr)
        assert predicate.path.steps[0].axis is Axis.DESCENDANT

    def test_contains_on_self(self):
        path = parse_xpath('//a[contains(., "x")]')
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, TextPredicate)
        assert predicate.kind == "contains" and predicate.pattern == "x"

    def test_contains_on_path_is_rewritten(self):
        path = parse_xpath('//a[contains(b/c, "x")]')
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, PathExpr)
        inner = predicate.path.steps[-1].predicates[0]
        assert isinstance(inner, TextPredicate) and inner.pattern == "x"

    def test_equality_predicate(self):
        path = parse_xpath('//gender[. = "female"]')
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, TextPredicate)
        assert predicate.kind == "equals"

    def test_string_escapes(self):
        path = parse_xpath('//a[contains(., "1999\\n11")]')
        assert path.steps[0].predicates[0].pattern == "1999\n11"

    def test_starts_and_ends_with(self):
        starts = parse_xpath('//a[starts-with(., "x")]').steps[0].predicates[0]
        ends = parse_xpath('//a[ends-with(., "y")]').steps[0].predicates[0]
        assert starts.kind == "starts-with" and ends.kind == "ends-with"

    def test_pssm(self):
        path = parse_xpath("//promoter[ PSSM(., M1) ]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, PssmPredicate)
        assert predicate.matrix_name == "M1"
        with_threshold = parse_xpath("//promoter[ PSSM(., M1, 12.5) ]").steps[0].predicates[0]
        assert with_threshold.threshold == 12.5

    def test_nested_predicates(self):
        path = parse_xpath("//people[ .//person[not(address)] ]/person[watches]")
        outer = path.steps[0].predicates[0]
        assert isinstance(outer, PathExpr)
        inner = outer.path.steps[0].predicates[0]
        assert isinstance(inner, NotExpr)


class TestErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "",
            "site",  # not absolute
            "//",
            "/a[",
            "/a]",
            "/a[contains(.)]",
            "/a[b ==]",
            "//a/following::b",  # unsupported axis name is parsed as an element; '::' makes it fail
            "/a[@]",
            '/a[5 = "x"]',
        ],
    )
    def test_rejects_invalid_queries(self, query):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(query)


class TestPublishedQuerySets:
    @pytest.mark.parametrize("name,query", sorted(XMARK_QUERIES.items()))
    def test_xmark_queries_parse(self, name, query):
        assert parse_xpath(query).absolute

    @pytest.mark.parametrize("name,query", sorted(TREEBANK_QUERIES.items()))
    def test_treebank_queries_parse(self, name, query):
        assert parse_xpath(query).absolute

    @pytest.mark.parametrize("name,query", sorted(MEDLINE_QUERIES.items()))
    def test_medline_queries_parse(self, name, query):
        assert parse_xpath(query).absolute

    @pytest.mark.parametrize("name,query", sorted(WIKI_QUERIES.items()))
    def test_wiki_queries_parse(self, name, query):
        assert parse_xpath(query).absolute
