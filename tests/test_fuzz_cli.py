"""In-process tests of the fuzz runner and its CLI entry point.

The CI fuzz jobs run ``python -m repro.fuzz`` as a subprocess; these tests
drive the same ``main()`` and :class:`~repro.fuzz.runner.FuzzRunner` in
process, so the loop (document rotation, layer checks, corpus writing,
replay) is exercised by the plain test suite (and counted by coverage).
"""

from __future__ import annotations

import json

from repro.fuzz.__main__ import main
from repro.fuzz.runner import FuzzRunner


def test_runner_clean_sweep_reports_stats():
    report = FuzzRunner(seed=5, layers=("engine",), queries_per_document=4).run(iterations=12)
    assert report.ok
    assert report.iterations == 12
    assert report.documents >= 3
    # One engine check per EVAL_MATRIX entry (incl. scalar-kernels) + counting.
    assert report.stats.layers.get("engine", 0) == 12 * 6
    assert "12 iterations" in report.summary()


def test_cli_fuzz_and_replay_round_trip(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    assert main(["--iterations", "8", "--seed", "3", "--layers", "engine", "--quiet",
                 "--corpus-dir", str(corpus)]) == 0
    capsys.readouterr()

    # Pin one synthetic seed and replay it through the CLI replay mode.
    corpus.mkdir(exist_ok=True)
    (corpus / "seed-000.json").write_text(
        json.dumps({"xml": "<a><b>x</b></a>", "query": "//b", "mode": "supported"}),
        encoding="utf-8",
    )
    assert main(["--replay", str(corpus), "--layers", "engine", "--quiet"]) == 0

    # An empty corpus directory is an error, not a silent pass.
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["--replay", str(empty), "--quiet"]) == 1
